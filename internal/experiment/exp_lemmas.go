package experiment

import (
	"context"
	"math"
	"slices"
	"sort"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/recycle"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runL1 measures the Lemma 1 event empirically: for an independent
// Bernoulli sequence, how often does some prefix sum X_i with i >= j fall
// below (1 - eps/j^{1/3}) * mu(X_i)? The failure rate must decay in j.
func runL1(ctx context.Context, cfg Config) (*Outcome, error) {
	const eps = 1.0
	n := cfg.scaleInt(20000, 2000)
	reps := cfg.scaleInt(400, 60)
	root := rng.New(cfg.Seed)

	ps := root.DeriveString("p")
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.4*ps.Float64()
	}
	g, err := recycle.NewIndependent(p)
	if err != nil {
		return nil, err
	}
	muPrefix := g.MeanPrefixSums()

	// Ascending, duplicate-free j values: the fused scan below and the
	// suffix-minimum fold both index segments by the rank of j.
	js := []int{10, 50, 250, 1250, n / 4}
	sort.Ints(js)
	js = slices.Compact(js)
	tab := report.NewTable("Lemma 1: P[exists i >= j with X_i < (1 - eps/j^{1/3}) mu(X_i)], eps=1",
		"j", "threshold factor at j", "failures", "reps", "failure rate", "Wilson 95% hi")

	rates := make([]float64, 0, len(js))
	// One pass per replication: realize once, test all j values on the same
	// path to keep the comparison paired. The realization and the per-j dip
	// scans fuse into a single quantized integer pass: each vertex draws one
	// uniform 32-bit half-word against its 32.32 fixed-point competency, and
	// a conservative integer gate filters dip candidates — a prefix count c
	// can only fall below factor_seg(i) * mu_i when c < gate[i], and the
	// factors ascend in j, so a vertex clearing its own segment's gate
	// clears factor_j for every j <= i. Only near-dip vertices reach the
	// float segment-minimum update, where the exact ratio decides.
	fails := make([]int, len(js))
	factors := make([]float64, len(js))
	for ji, j := range js {
		factors[ji] = 1 - eps/math.Cbrt(float64(j))
	}
	p64 := make([]uint64, n)
	for i, v := range p {
		p64[i] = uint64(v * (1 << 32)) // p strictly inside (0, 1) here
	}
	seg := make([]int, n)
	gate := make([]int, n) // zero below js[0]: no vertex there can gate
	invMu := make([]float64, n)
	for i, si := js[0], 0; i < n; i++ {
		for si+1 < len(js) && js[si+1] <= i {
			si++
		}
		seg[i] = si
		invMu[i] = 1 / muPrefix[i]
		// +1 pads against rounding in the float product: overestimating the
		// gate only sends extra vertices to the exact comparison.
		gate[i] = int(math.Ceil(factors[si]*muPrefix[i])) + 1
	}
	segMin := make([]float64, len(js))
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for ji := range segMin {
			segMin[ji] = math.Inf(1)
		}
		src := root.Derive(uint64(r) + 10).Source()
		c := 0
		var w uint64
		half := false
		for i := 0; i < n; i++ {
			if half {
				w >>= 32
				half = false
			} else {
				w = src.Uint64()
				half = true
			}
			// Borrow-bit indicator [u < p64[i]] — no data-dependent branch.
			c += int((w&0xffffffff - p64[i]) >> 63)
			if c < gate[i] {
				if v := float64(c) * invMu[i]; v < segMin[seg[i]] {
					segMin[seg[i]] = v
				}
			}
		}
		m := math.Inf(1)
		for ji := len(js) - 1; ji >= 0; ji-- {
			if segMin[ji] < m {
				m = segMin[ji]
			}
			if m < factors[ji] {
				fails[ji]++
			}
		}
	}
	for ji, j := range js {
		rate := float64(fails[ji]) / float64(reps)
		_, hi := prob.WilsonInterval(fails[ji], reps, 0.95)
		tab.AddRow(report.Itoa(j), report.F(factors[ji]), report.Itoa(fails[ji]),
			report.Itoa(reps), report.F(rate), report.F(hi))
		rates = append(rates, rate)
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("failure rate non-increasing in j", isNonIncreasing(rates, 0.02), "rates %v", rates),
			check("large-j failure rate near zero", rates[len(rates)-1] < 0.05, "rate %v", rates[len(rates)-1]),
		},
	}, nil
}

// runL2 measures Lemma 2: recycle-sampled sums with partition complexity c
// stay above mu(X_n) - c*eps*n/j^{1/3}. We construct layered recycle graphs
// with exact complexity c and track both the violation rate of the bound
// and the worst observed normalized deviation, which should grow with c
// (the dependency makes the lower tail fatter) while staying inside the
// c-scaled envelope.
func runL2(ctx context.Context, cfg Config) (*Outcome, error) {
	const eps = 0.5
	n := cfg.scaleInt(10000, 1500)
	reps := cfg.scaleInt(300, 50)
	j := n / 10
	root := rng.New(cfg.Seed)

	tab := report.NewTable("Lemma 2: recycle-sampled concentration, j = n/10, eps = 0.5",
		"c", "mu(X_n)", "bound", "violations", "reps", "worst deviation", "stddev of X_n")

	cs := []int{1, 2, 4, 8}
	violationRates := make([]float64, 0, len(cs))
	stddevs := make([]float64, 0, len(cs))
	bt := prob.NewBinomialTables(n)
	for _, c := range cs {
		g, err := layeredRecycleGraph(n, j, c, root.Derive(uint64(c)))
		if err != nil {
			return nil, err
		}
		cGot := g.PartitionComplexity()
		if cGot != c {
			return nil, errf("layered graph complexity = %d, want %d", cGot, c)
		}
		mu := g.MeanSum()
		// The Lemma 2 threshold, from the mean and complexity computed once
		// above (recycle.Lemma2Bound recomputes both; formula kept in sync).
		bound := mu - float64(cGot)*eps*float64(n)/math.Cbrt(float64(max(g.J, 1)))

		// Layer collapse: each copy layer's sum is conditionally
		// Binomial(size, S/upTo) given the realized prefix (see layerRuns),
		// so a replication is j quantized fresh draws plus one exact
		// Binomial draw per layer instead of n per-vertex copies.
		runs, ok := layerRuns(g)
		if !ok || len(runs) == 0 || runs[0].start != j {
			return nil, errf("layered graph (c=%d) did not decompose into copy layers", c)
		}
		pq := make([]uint64, j)
		for i := range pq {
			pq[i] = uint64(g.P[i] * (1 << 32))
		}

		var sum prob.Summary
		violations := 0
		worst := 0.0
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := root.Derive(uint64(c)*1000 + uint64(r) + 1)
			src := s.Source()
			S := 0
			var w uint64
			half := false
			for i := 0; i < j; i++ {
				if half {
					w >>= 32
					half = false
				} else {
					w = src.Uint64()
					half = true
				}
				S += int((w&0xffffffff - pq[i]) >> 63)
			}
			for _, ru := range runs {
				// S is the prefix sum at ru.start == ru.upTo.
				S += bt.Draw(ru.size, float64(S)/float64(ru.upTo), s.Float64())
			}
			x := float64(S)
			sum.Add(x)
			if x < bound {
				violations++
			}
			if dev := mu - x; dev > worst {
				worst = dev
			}
		}
		rate := float64(violations) / float64(reps)
		violationRates = append(violationRates, rate)
		stddevs = append(stddevs, sum.StdDev())
		tab.AddRow(report.Itoa(c), report.F2(mu), report.F2(bound),
			report.Itoa(violations), report.Itoa(reps), report.F2(worst), report.F2(sum.StdDev()))
	}

	maxRate := 0.0
	for _, r := range violationRates {
		if r > maxRate {
			maxRate = r
		}
	}
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("Lemma 2 bound holds w.h.p. for every c", maxRate < 0.05, "max violation rate %v", maxRate),
			check("dependency widens the spread (stddev grows with c)",
				stddevs[len(stddevs)-1] > stddevs[0], "stddevs %v", stddevs),
		},
	}, nil
}

// layerRun is a maximal block of always-copy vertices whose shared copy
// prefix ends exactly where the block starts.
type layerRun struct{ start, size, upTo int }

// layerRuns decomposes g into a fresh prefix followed by collapsible copy
// layers: maximal consecutive blocks of z = 0 vertices with a constant copy
// bound equal to the block's own start index. Within such a block, every
// vertex copies a uniformly random vertex strictly before the block, so
// conditioned on the realized prefix x_0..x_{upTo-1} with sum S the block's
// values are i.i.d. Bernoulli(S/upTo) — and its sum is exactly
// Binomial(size, S/upTo). The joint law of the prefix sums at block
// boundaries (all any later block reads) therefore factorizes into one
// Binomial per block, which is what runL2 samples. Returns ok = false when
// g is not of this shape.
func layerRuns(g *recycle.Graph) ([]layerRun, bool) {
	n := g.N()
	i := 0
	for i < n && (g.UpTo[i] == 0 || g.Z[i] >= 1) {
		i++ // fresh prefix, realized per-vertex by the caller
	}
	var runs []layerRun
	for i < n {
		if g.Z[i] != 0 || g.UpTo[i] != i {
			return nil, false
		}
		u := g.UpTo[i]
		k := i
		for k < n && g.Z[k] == 0 && g.UpTo[k] == u {
			k++
		}
		runs = append(runs, layerRun{start: i, size: k - i, upTo: u})
		i = k
	}
	return runs, true
}

// layeredRecycleGraph builds a (j, c, n)-recycle graph with exact partition
// complexity c: after the fresh prefix of size j, the remaining vertices are
// split into c layers; each copying vertex copies uniformly from everything
// before its layer, and layer boundaries force chains of length exactly c.
func layeredRecycleGraph(n, j, c int, s *rng.Stream) (*recycle.Graph, error) {
	z := make([]float64, n)
	p := make([]float64, n)
	upTo := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	for i := 0; i < j; i++ {
		z[i] = 1
	}
	layer := (n - j) / c
	if layer < 1 {
		layer = 1
	}
	for i := j; i < n; i++ {
		t := (i - j) / layer // layer index
		if t >= c {
			t = c - 1
		}
		start := j + t*layer
		z[i] = 0
		upTo[i] = start
		if upTo[i] < j {
			upTo[i] = j
		}
	}
	return recycle.New(j, z, p, upTo)
}

// runL3 measures Lemma 3: with bounded competencies, delegating at most
// n^{1/2 - eps} votes flips the outcome with vanishing probability. The
// most harmful local delegation (k mid-tier voters delegate onto the single
// best voter, concentrating exactly k+1 weight) factorizes: both electorates
// share the n-k-1 voters outside the top group, so one common
// Poisson-binomial variable C serves both exact probabilities. With
// T = (n+1)/2 the majority threshold (sizes are odd) and S the direct-vote
// sum of the k+1 top-group voters,
//
//	P^M = p_top * P[C >= T-(k+1)] + (1-p_top) * P[C >= T]
//	P^D = sum_j P[S = j] * P[C >= T-j]
//
// replacing the two full n-voter PMFs of the direct formulation with one
// (n-k-1)-voter PMF plus O(n + k^2) work. Only the competency values are
// needed: no Instance, delegation graph, or resolution is materialized.
func runL3(ctx context.Context, cfg Config) (*Outcome, error) {
	const (
		beta = 0.2
		eps  = 0.1
	)
	sizes := dedupeSizes([]int{501, 1001, 2001, cfg.scaleInt(4001, 2001)})
	root := rng.New(cfg.Seed)

	tab := report.NewTable("Lemma 3: adversarial delegation of k = n^{1/2-eps} votes, p in (0.2, 0.8)",
		"n", "k delegated", "P^D", "P^M", "loss", "normal flip bound")

	ws := prob.NewWorkspace()
	losses := make([]float64, 0, len(sizes))
	bounds := make([]float64, 0, len(sizes))
	// One max-size buffer each for the draws, the common electorate, and
	// the tail sums, reused across sizes (the per-size garbage showed up in
	// the experiment benchmark's GC time).
	maxN := sizes[len(sizes)-1]
	psBuf := make([]float64, maxN)
	restBuf := make([]float64, 0, maxN)
	tailBuf := make([]float64, maxN+1)
	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Same draw protocol as uniformInstance on K_n; the factorized
		// computation needs only the values.
		s := root.Derive(uint64(n))
		lo, hi := beta+0.01, 1-beta-0.01
		ps := psBuf[:n]
		for i := range ps {
			ps[i] = lo + (hi-lo)*s.Float64()
		}
		k := int(math.Pow(float64(n), 0.5-eps))

		// The k+1 largest competencies form the top group (the delegation
		// target and its delegators). Equal values are interchangeable in
		// both formulas, so the multiset split needs no id tiebreak.
		topVals, common := splitTopValues(ps, k+1, restBuf[:0])
		pTop := topVals[0]

		// Exact PMF of S over the k+1 top-group voters: O(k^2) DP.
		small := make([]float64, 1, len(topVals)+1)
		small[0] = 1
		for _, p := range topVals {
			small = append(small, 0)
			for j := len(small) - 1; j > 0; j-- {
				small[j] = small[j]*(1-p) + small[j-1]*p
			}
			small[0] *= 1 - p
		}

		pbC, err := ws.PoissonBinomial(common)
		if err != nil {
			return nil, err
		}
		pmf := pbC.PMFWS(ws)
		// tail[m] = P[C >= m].
		tail := tailBuf[:len(pmf)+1]
		tail[len(pmf)] = 0
		for m := len(pmf) - 1; m >= 0; m-- {
			tail[m] = tail[m+1] + pmf[m]
		}
		tailAt := func(m int) float64 {
			if m <= 0 {
				return 1
			}
			if m >= len(tail) {
				return 0
			}
			return tail[m]
		}

		T := (n + 1) / 2
		pm := pTop*tailAt(T-(k+1)) + (1-pTop)*tailAt(T)
		var pdAcc prob.Accumulator
		for j, q := range small {
			pdAcc.Add(q * tailAt(T-j))
		}
		pd := pdAcc.Sum()

		loss := pd - pm
		losses = append(losses, loss)
		var mu, v prob.Accumulator
		for _, p := range ps {
			mu.Add(p)
			v.Add(p * (1 - p))
		}
		bound := prob.FlipProbabilityBound(n, mu.Sum(), math.Sqrt(v.Sum()), 2*float64(k))
		bounds = append(bounds, bound)
		tab.AddRow(report.Itoa(n), report.Itoa(k), report.F(pd), report.F(pm),
			report.F(loss), report.F(bound))
	}

	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("loss bounded by the flip-window probability",
				pairwiseAtMost(losses, bounds, 0.02), "losses %v bounds %v", losses, bounds),
			check("flip bound decays with n", trendDown(bounds, 0.02) || isNonIncreasing(bounds, 0.02),
				"bounds %v", bounds),
			check("loss stays small everywhere", maxAbs(losses) < 0.1, "losses %v", losses),
		},
	}, nil
}

// splitTopValues partitions the multiset ps into its m largest values
// (returned descending) and the remaining values, via a size-m min-heap in
// O(n log m) — no full sort. ps is not modified; rest values are appended
// to restBuf, so callers can hand the same buffer to every call.
func splitTopValues(ps []float64, m int, restBuf []float64) (top, rest []float64) {
	if m > len(ps) {
		m = len(ps)
	}
	h := make([]float64, 0, m) // min-heap over the m largest seen so far
	down := func() {
		i := 0
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			if r := l + 1; r < len(h) && h[r] < h[l] {
				l = r
			}
			if h[i] <= h[l] {
				return
			}
			h[i], h[l] = h[l], h[i]
			i = l
		}
	}
	for _, p := range ps {
		if len(h) < m {
			h = append(h, p)
			for i := len(h) - 1; i > 0; {
				par := (i - 1) / 2
				if h[par] <= h[i] {
					break
				}
				h[par], h[i] = h[i], h[par]
				i = par
			}
		} else if p > h[0] {
			h[0] = p
			down()
		}
	}
	slices.Sort(h)
	slices.Reverse(h)
	top = h
	// Everything below the cutoff is rest; values equal to the cutoff are
	// split by count so exactly m values land in top.
	t := h[len(h)-1]
	equalTake := 0
	for _, p := range h {
		if p == t {
			equalTake++
		}
	}
	rest = restBuf
	for _, p := range ps {
		switch {
		case p > t:
		case p == t && equalTake > 0:
			equalTake--
		default:
			rest = append(rest, p)
		}
	}
	return top, rest
}

// runL5 measures Lemma 5/6: with every sink weight at most w, deviations of
// the realized correct weight from its mean stay inside sqrt(n^{1+eps} * w).
func runL5(ctx context.Context, cfg Config) (*Outcome, error) {
	const eps = 0.1
	n := cfg.scaleInt(4001, 801)
	reps := cfg.scaleInt(400, 80)
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.25, 0.75, root.DeriveString("instance"))
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Lemma 5: deviation of correct weight vs max sink weight w (eps = 0.1)",
		"w", "sinks", "envelope sqrt(n^{1+eps} w)", "violations", "reps", "max |X - mu|", "mean |X - mu|")

	ws := []int{1, 4, 16, 64}
	meanDevs := make([]float64, 0, len(ws))
	maxViolationRate := 0.0
	for _, w := range ws {
		var res *core.Resolution
		if w == 1 {
			// Cap 1 cuts every delegation edge whatever the inner mechanism
			// draws, so the outcome is direct voting; build it without the
			// apply/cut/resolve pipeline.
			var err error
			res, err = core.NewDelegationGraph(n).Resolve()
			if err != nil {
				return nil, err
			}
		} else {
			mech := mechanism.WeightCapped{
				Inner:     mechanism.ApprovalThreshold{Alpha: 0.02},
				MaxWeight: w,
			}
			d, err := mech.Apply(in, root.Derive(uint64(w)))
			if err != nil {
				return nil, err
			}
			res, err = d.Resolve()
			if err != nil {
				return nil, err
			}
		}
		// Mean of the correct-weight variable.
		var mu float64
		for _, sk := range res.Sinks {
			mu += float64(res.Weight[sk]) * in.Competency(sk)
		}
		envelope := math.Sqrt(math.Pow(float64(n), 1+eps) * float64(w))

		// X = sum_k weight_k * Bernoulli(p_k), realized by the quantized
		// per-sink kernel: one 32-bit uniform half-word per sink against the
		// 32.32 fixed-point competency, weight applied branchlessly. With
		// reps well below the total weight, this is cheaper than building
		// the exact weighted-majority CDF and inverting it.
		sk64 := make([]uint64, len(res.Sinks))
		wts := make([]int, len(res.Sinks))
		for i, sk := range res.Sinks {
			sk64[i] = uint64(in.Competency(sk) * (1 << 32))
			wts[i] = res.Weight[sk]
		}

		violations := 0
		maxDev, sumDev := 0.0, 0.0
		voteStream := root.Derive(uint64(w) * 7919)
		src := voteStream.Source()
		// Every rep consumes half-words low-half first with an odd tail
		// taking the low half of its own word, so the pairwise unroll below
		// (and the multiply-free w == 1 variant — cap 1 forces every sink
		// weight to exactly 1) draws identically to a per-sink halfword loop.
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			xw := 0
			i := 0
			if w == 1 {
				for ; i+2 <= len(sk64); i += 2 {
					word := src.Uint64()
					xw += int((word&0xffffffff - sk64[i]) >> 63)
					xw += int((word>>32 - sk64[i+1]) >> 63)
				}
			} else {
				for ; i+2 <= len(sk64); i += 2 {
					word := src.Uint64()
					xw += wts[i] * int((word&0xffffffff-sk64[i])>>63)
					xw += wts[i+1] * int((word>>32-sk64[i+1])>>63)
				}
			}
			if i < len(sk64) {
				xw += wts[i] * int((src.Uint64()&0xffffffff-sk64[i])>>63)
			}
			dev := math.Abs(float64(xw) - mu)
			sumDev += dev
			if dev > maxDev {
				maxDev = dev
			}
			if dev > envelope {
				violations++
			}
		}
		rate := float64(violations) / float64(reps)
		if rate > maxViolationRate {
			maxViolationRate = rate
		}
		meanDevs = append(meanDevs, sumDev/float64(reps))
		tab.AddRow(report.Itoa(w), report.Itoa(len(res.Sinks)), report.F2(envelope),
			report.Itoa(violations), report.Itoa(reps), report.F2(maxDev), report.F2(sumDev/float64(reps)))
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("envelope holds w.h.p. (violation rate < 5%)", maxViolationRate < 0.05,
				"max rate %v", maxViolationRate),
			check("deviation grows with w", meanDevs[len(meanDevs)-1] > meanDevs[0], "mean devs %v", meanDevs),
		},
	}, nil
}

// pairwiseAtMost reports xs[i] <= ys[i] + tol for all i.
func pairwiseAtMost(xs, ys []float64, tol float64) bool {
	for i := range xs {
		if xs[i] > ys[i]+tol {
			return false
		}
	}
	return true
}

// maxAbs returns max |x|.
func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
