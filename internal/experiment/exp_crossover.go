package experiment

import (
	"context"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runA4 locates the crossover where delegation stops mattering: sweeping
// the electorate's mean competency mu through 1/2, Algorithm 1 on K_n gains
// hugely below 1/2 (direct voting is hopeless, delegation manufactures a
// decisive bloc) and converges to zero gain above it (direct voting already
// wins). The concentrating greedy mechanism on the star, in contrast,
// flips from helpful to harmful as mu passes 1/2 — the Figure 1 phenomenon
// as a function of competence rather than size.
func runA4(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1001, 301)
	reps := cfg.scaleInt(24, 8)
	root := rng.New(cfg.Seed)

	mus := []float64{0.35, 0.40, 0.45, 0.48, 0.52, 0.55, 0.60, 0.65}
	const band = 0.05

	tab := report.NewTable(
		fmt.Sprintf("Ablation A4: mean-competency sweep (n=%d, band ±%g)", n, band),
		"mean p", "K_n threshold gain", "K_n P^D", "star greedy gain", "star P^D")

	var (
		knGains   []float64
		starGains []float64
	)
	for i, mu := range mus {
		// K_n with Algorithm 1.
		knIn, err := uniformInstance(graph.NewComplete(n), mu-band, mu+band, root.Derive(uint64(i)*2+1))
		if err != nil {
			return nil, err
		}
		knRes, err := election.EvaluateMechanism(ctx, knIn, mechanism.ApprovalThreshold{Alpha: 0.05}, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "A4", fmt.Sprintf("mu=%g", mu), "kn"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}

		// Star with greedy: center slightly above the leaves' mean.
		starTop, err := graph.Star(n)
		if err != nil {
			return nil, err
		}
		p := make([]float64, n)
		center := mu + 0.06
		if center > 0.99 {
			center = 0.99
		}
		p[0] = center
		for v := 1; v < n; v++ {
			p[v] = mu
		}
		starIn, err := core.NewInstance(starTop, p)
		if err != nil {
			return nil, err
		}
		starRes, err := election.EvaluateMechanism(ctx, starIn, mechanism.GreedyBest{Alpha: 0.01}, election.Options{
			Replications: 4, Seed: rng.Derive(cfg.Seed, "A4", fmt.Sprintf("mu=%g", mu), "star"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}

		knGains = append(knGains, knRes.Gain)
		starGains = append(starGains, starRes.Gain)
		tab.AddRow(report.F2(mu), report.F(knRes.Gain), report.F(knRes.PD),
			report.F(starRes.Gain), report.F(starRes.PD))
	}

	last := len(mus) - 1
	// The gain peaks just below 1/2: delegation cannot rescue a deeply
	// incompetent electorate (sinks are still below 1/2 when mu is small),
	// and is unnecessary above 1/2.
	peak := 0
	for i, g := range knGains {
		if g > knGains[peak] {
			peak = i
		}
	}
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("K_n gain peaks just below 1/2", mus[peak] >= 0.40 && mus[peak] <= 0.49,
				"peak gain %.4f at mu=%g", knGains[peak], mus[peak]),
			check("K_n delegation never harms below 1/2", minFloat(knGains[:4]) >= -0.005,
				"gains %v", knGains[:4]),
			check("K_n gain at the peak is substantial", knGains[peak] > 0.1,
				"peak gain %v", knGains[peak]),
			check("K_n gain collapses above 1/2", knGains[last] < 0.01 && knGains[last] > -0.01,
				"gain at mu=%g: %v", mus[last], knGains[last]),
			check("star greedy helps below 1/2", starGains[0] > 0, "gain %v", starGains[0]),
			check("star greedy harms above 1/2 (Figure 1 regime)", starGains[last] < -0.05,
				"gain at mu=%g: %v", mus[last], starGains[last]),
			check("crossovers bracket 1/2", knGains[2] > knGains[last] && starGains[2] > starGains[last],
				"K_n %v star %v", knGains, starGains),
		},
	}, nil
}
