package experiment

import (
	"context"
	"fmt"
	"sort"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX10 probes the paper's social-implications discussion: on scale-free
// networks, what happens when competence correlates with connectivity?
// With competent hubs, delegated weight piles onto them (high max weight —
// efficient but fragile); with incompetent hubs ("influencers spreading
// misinformation"), approval-based delegation routes around them, keeping
// weight dispersed and the gain intact. Local approval filtering is the
// defence mechanism.
func runX10(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(2000, 500)
	reps := cfg.scaleInt(24, 8)
	const alpha = 0.05
	root := rng.New(cfg.Seed)

	top, err := graph.BarabasiAlbert(n, 4, root.DeriveString("graph"))
	if err != nil {
		return nil, err
	}
	// Sorted competency pool in [0.30, 0.49] (SPG regime).
	pool := make([]float64, n)
	ps := root.DeriveString("pool")
	for i := range pool {
		pool[i] = 0.30 + 0.19*ps.Float64()
	}
	sort.Float64s(pool)

	// Vertex ids sorted by degree ascending.
	byDegree := make([]int, n)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.SliceStable(byDegree, func(a, b int) bool {
		return top.Degree(byDegree[a]) < top.Degree(byDegree[b])
	})

	assign := func(kind string) ([]float64, error) {
		p := make([]float64, n)
		switch kind {
		case "hubs most competent":
			for rank, v := range byDegree {
				p[v] = pool[rank] // high degree gets high competency
			}
		case "hubs least competent":
			for rank, v := range byDegree {
				p[v] = pool[n-1-rank]
			}
		case "uncorrelated":
			perm := root.DeriveString("perm").Perm(n)
			for i, v := range perm {
				p[v] = pool[i]
			}
		default:
			return nil, errf("unknown assignment %q", kind)
		}
		return p, nil
	}

	tab := report.NewTable(
		fmt.Sprintf("X10: degree-competency correlation on a BA graph (n=%d, alpha=%g, SPG regime)", n, alpha),
		"assignment", "hub competency (top 10 mean)", "gain", "mean max w", "max w", "sinks")

	type rowOut struct {
		gain float64
		maxW float64
	}
	results := make(map[string]rowOut, 3)
	for _, kind := range []string{"hubs most competent", "hubs least competent", "uncorrelated"} {
		p, err := assign(kind)
		if err != nil {
			return nil, err
		}
		in, err := core.NewInstance(top, p)
		if err != nil {
			return nil, err
		}
		res, err := election.EvaluateMechanism(ctx, in, mechanism.ApprovalThreshold{Alpha: alpha}, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "X10", kind), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		var hubComp float64
		for _, v := range byDegree[n-10:] {
			hubComp += p[v]
		}
		hubComp /= 10
		results[kind] = rowOut{gain: res.Gain, maxW: res.MeanMaxWeight}
		tab.AddRow(kind, report.F(hubComp), report.F(res.Gain),
			report.F2(res.MeanMaxWeight), report.Itoa(res.MaxMaxWeight), report.F2(res.MeanSinks))
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("delegation gains under every correlation structure",
				results["hubs most competent"].gain > 0 &&
					results["hubs least competent"].gain > 0 &&
					results["uncorrelated"].gain > 0,
				"gains %+v", results),
			check("competent hubs attract more weight than incompetent hubs",
				results["hubs most competent"].maxW > results["hubs least competent"].maxW,
				"max w %+v", results),
			check("approval filtering routes around incompetent hubs (weight stays dispersed)",
				results["hubs least competent"].maxW <= results["uncorrelated"].maxW*1.5,
				"max w %+v", results),
		},
	}, nil
}
