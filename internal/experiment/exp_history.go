package experiment

import (
	"context"
	"fmt"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/history"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX7 measures how the paper's information assumption degrades in
// practice: approval sets estimated from a finite track record of past
// issues instead of true competencies. Mechanisms run on the observed
// (surrogate) accuracies; outcomes are scored against the true
// competencies.
//
// Two effects appear. In the SPG regime, estimation noise *helps*: noisy
// approvals admit longer chains and heavier sinks, i.e. even more variance,
// which below mean-1/2 converts into extra wins (another facet of variance
// manipulation). In the DNH regime, where direct voting already wins,
// misdelegation is pure risk — the loss must stay small and shrink as the
// history grows.
func runX7(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1001, 301)
	reps := cfg.scaleInt(24, 8)
	const alpha = 0.05
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		return nil, err
	}
	mech := mechanism.ApprovalThreshold{Alpha: alpha}

	// Perfect-information reference.
	ref, err := election.EvaluateMechanism(ctx, in, mech, election.Options{
		Replications: reps, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}

	tab := report.NewTable(
		fmt.Sprintf("X7: approvals from track records (K_n, n=%d, alpha=%g)", n, alpha),
		"history length t", "misdelegation rate", "P^M", "gain", "gain / perfect gain")

	ts := []int{4, 16, 64, 256, 1024}
	gains := make([]float64, 0, len(ts))
	misRates := make([]float64, 0, len(ts))
	// Replications on one instance keep resolving to similar sink
	// multisets; a shared workspace and score cache keep the exact DP off
	// the hot path (values are unchanged either way, see election/cache.go).
	ws := prob.NewWorkspace()
	scores := election.NewScoreCache()
	for _, t := range ts {
		var pmSum prob.Summary
		var misSum prob.Summary
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := root.Derive(uint64(t)*1000 + uint64(r))
			tr, err := history.Simulate(in, t, s.DeriveString("record"))
			if err != nil {
				return nil, err
			}
			sur, err := tr.SurrogateInstance(in)
			if err != nil {
				return nil, err
			}
			d, err := mech.Apply(sur, s.DeriveString("mech"))
			if err != nil {
				return nil, err
			}
			misSum.Add(history.MisdelegationRate(in, d, alpha))
			res, err := d.Resolve()
			if err != nil {
				return nil, err
			}
			pm, err := election.ResolutionProbabilityExactCached(in, res, ws, scores)
			if err != nil {
				return nil, err
			}
			pmSum.Add(pm)
		}
		gain := pmSum.Mean() - pd
		gains = append(gains, gain)
		misRates = append(misRates, misSum.Mean())
		ratio := 0.0
		if ref.Gain > 0 {
			ratio = gain / ref.Gain
		}
		tab.AddRow(report.Itoa(t), report.F(misSum.Mean()), report.F(pmSum.Mean()),
			report.F(gain), report.F2(ratio))
	}
	tab.AddRow("∞ (true p)", "0.0000", report.F(ref.PM), report.F(ref.Gain), "1.00")

	// DNH regime: true competencies above 1/2; noisy approvals can only
	// hurt here.
	dnhIn, err := uniformInstance(graph.NewComplete(n), 0.52, 0.80, root.DeriveString("dnh"))
	if err != nil {
		return nil, err
	}
	dnhPD, err := election.DirectProbabilityExact(dnhIn)
	if err != nil {
		return nil, err
	}
	dnhTab := report.NewTable(
		fmt.Sprintf("X7b: track-record approvals in the DNH regime (p in [0.52, 0.8], n=%d)", n),
		"history length t", "misdelegation rate", "P^M", "loss")
	dnhLosses := make([]float64, 0, len(ts))
	for _, t := range ts {
		var pmSum, misSum prob.Summary
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := root.Derive(uint64(t)*7777 + uint64(r))
			tr, err := history.Simulate(dnhIn, t, s.DeriveString("record"))
			if err != nil {
				return nil, err
			}
			sur, err := tr.SurrogateInstance(dnhIn)
			if err != nil {
				return nil, err
			}
			d, err := mech.Apply(sur, s.DeriveString("mech"))
			if err != nil {
				return nil, err
			}
			misSum.Add(history.MisdelegationRate(dnhIn, d, alpha))
			res, err := d.Resolve()
			if err != nil {
				return nil, err
			}
			pm, err := election.ResolutionProbabilityExactCached(dnhIn, res, ws, scores)
			if err != nil {
				return nil, err
			}
			pmSum.Add(pm)
		}
		loss := dnhPD - pmSum.Mean()
		dnhLosses = append(dnhLosses, loss)
		dnhTab.AddRow(report.Itoa(t), report.F(misSum.Mean()), report.F(pmSum.Mean()), report.F(loss))
	}

	last := len(ts) - 1
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab, dnhTab},
		Checks: []Check{
			check("misdelegation rate falls with history length",
				misRates[last] < misRates[0], "rates %v", misRates),
			check("noisy approvals never harm in the SPG regime", minFloat(gains) > 0,
				"gains %v", gains),
			check("estimation noise adds variance, hence extra gain below 1/2",
				gains[1] >= ref.Gain, "noisy gain %v vs perfect %v", gains[1], ref.Gain),
			check("long histories restore do-no-harm", dnhLosses[last] < 0.05,
				"losses %v", dnhLosses),
			check("finding: moderate histories can violate DNH (noise concentrates weight on misjudged voters)",
				maxAbs(dnhLosses) >= dnhLosses[last], "worst %v final %v", maxAbs(dnhLosses), dnhLosses[last]),
		},
	}, nil
}
