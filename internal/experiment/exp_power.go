package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/power"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX6 audits voting-power concentration (the quantity the empirical
// blockchain-governance studies cited by the paper measure): Gini,
// Nakamoto coefficient, and effective holders of the delegated weight
// distribution for a ladder of mechanisms, plus a token-weighted DAO
// variant in which voters start with unequal voting power.
func runX6(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(2000, 500)
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}

	mechs := []mechanism.Mechanism{
		mechanism.Direct{},
		mechanism.WeightCapped{Inner: mechanism.ApprovalThreshold{Alpha: 0.05}, MaxWeight: 8},
		mechanism.ApprovalThreshold{Alpha: 0.05},
		mechanism.GreedyBest{Alpha: 0.05},
	}

	tab := report.NewTable(
		fmt.Sprintf("X6a: power concentration of delegated weight (K_n, n=%d)", n),
		"mechanism", "sinks", "Gini", "Nakamoto", "effective holders", "top-1%% share")

	ginis := make([]float64, 0, len(mechs))
	nakamotos := make([]int, 0, len(mechs))
	for i, m := range mechs {
		d, err := m.Apply(in, root.Derive(uint64(i)+1))
		if err != nil {
			return nil, err
		}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		sinkWeights := make([]int, 0, len(res.Sinks))
		for _, sk := range res.Sinks {
			sinkWeights = append(sinkWeights, res.Weight[sk])
		}
		w := power.FromInts(sinkWeights)
		gini, err := w.Gini()
		if err != nil {
			return nil, err
		}
		nak, err := w.Nakamoto()
		if err != nil {
			return nil, err
		}
		eff, err := w.EffectiveHolders()
		if err != nil {
			return nil, err
		}
		topShare, err := w.TopShare(max(len(sinkWeights)/100, 1))
		if err != nil {
			return nil, err
		}
		ginis = append(ginis, gini)
		nakamotos = append(nakamotos, nak)
		tab.AddRow(m.Name(), report.Itoa(len(res.Sinks)), report.F(gini),
			report.Itoa(nak), report.F2(eff), report.F(topShare))
	}

	// Token-weighted DAO: geometric-ish token balances (whale-heavy).
	tokens := make([]int, n)
	tokStream := root.DeriveString("tokens")
	for i := range tokens {
		// Exponential tail: most voters hold little, a few hold a lot.
		tokens[i] = 1 + int(math.Floor(10*tokStream.ExpFloat64()))
	}
	initGini, err := power.FromInts(tokens).Gini()
	if err != nil {
		return nil, err
	}

	tokTab := report.NewTable(
		"X6b: token-weighted DAO vote (exponential balances)",
		"stage", "Gini", "Nakamoto", "P[correct]")
	initNak, err := power.FromInts(tokens).Nakamoto()
	if err != nil {
		return nil, err
	}
	pdTok, err := tokenProbability(in, core.NewDelegationGraph(n), tokens)
	if err != nil {
		return nil, err
	}
	tokTab.AddRow("initial balances (direct)", report.F(initGini), report.Itoa(initNak), report.F(pdTok))

	d, err := (mechanism.ApprovalThreshold{Alpha: 0.05}).Apply(in, root.DeriveString("tokmech"))
	if err != nil {
		return nil, err
	}
	res, err := d.ResolveWithWeights(tokens)
	if err != nil {
		return nil, err
	}
	sinkWeights := make([]int, 0, len(res.Sinks))
	for _, sk := range res.Sinks {
		if res.Weight[sk] > 0 {
			sinkWeights = append(sinkWeights, res.Weight[sk])
		}
	}
	delGini, err := power.FromInts(sinkWeights).Gini()
	if err != nil {
		return nil, err
	}
	delNak, err := power.FromInts(sinkWeights).Nakamoto()
	if err != nil {
		return nil, err
	}
	pmTok, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		return nil, err
	}
	tokTab.AddRow("after delegation (sinks)", report.F(delGini), report.Itoa(delNak), report.F(pmTok))

	return &Outcome{
		Tables: []*report.Table{tab, tokTab},
		Checks: []Check{
			check("concentration rises along the mechanism ladder",
				ginis[0] < ginis[2] && nakamotos[0] > nakamotos[2] && nakamotos[2] > nakamotos[3],
				"ginis %v nakamotos %v", ginis, nakamotos),
			check("direct voting has zero Gini", ginis[0] < 1e-9, "gini %v", ginis[0]),
			check("weight cap tames concentration vs uncapped", ginis[1] <= ginis[2]+1e-9,
				"capped %v uncapped %v", ginis[1], ginis[2]),
			check("token delegation still gains", pmTok > pdTok, "P^M %v vs P^D %v", pmTok, pdTok),
			check("delegation amplifies token concentration (fewer, bigger holders)",
				delNak <= initNak, "Nakamoto %d -> %d", initNak, delNak),
		},
	}, nil
}

// tokenProbability scores a delegation graph under initial token weights.
func tokenProbability(in *core.Instance, d *core.DelegationGraph, tokens []int) (float64, error) {
	res, err := d.ResolveWithWeights(tokens)
	if err != nil {
		return 0, err
	}
	return election.ResolutionProbabilityExact(in, res)
}
