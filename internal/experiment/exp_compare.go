package experiment

import (
	"context"
	"fmt"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runA6 ranks the mechanism family head-to-head with paired (common-
// random-number) comparisons, which resolve orderings far smaller than the
// independent-run confidence intervals could: randomized uniform delegation
// vs greedy concentration vs weight caps, in both competency regimes.
func runA6(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(801, 301)
	reps := cfg.scaleInt(24, 8)
	root := rng.New(cfg.Seed)

	type duel struct {
		name string
		a, b mechanism.Mechanism
	}
	duels := []duel{
		{"threshold vs direct", mechanism.ApprovalThreshold{Alpha: 0.05}, mechanism.Direct{}},
		{"threshold vs greedy", mechanism.ApprovalThreshold{Alpha: 0.05}, mechanism.GreedyBest{Alpha: 0.05}},
		{"threshold vs capped w=8",
			mechanism.ApprovalThreshold{Alpha: 0.05},
			mechanism.WeightCapped{Inner: mechanism.ApprovalThreshold{Alpha: 0.05}, MaxWeight: 8}},
		{"alpha 0.02 vs alpha 0.10",
			mechanism.ApprovalThreshold{Alpha: 0.02},
			mechanism.ApprovalThreshold{Alpha: 0.10}},
	}

	makeTable := func(title string) *report.Table {
		return report.NewTable(title, "duel", "mean diff P^A-P^B", "95% CI", "A wins", "B wins", "ties", "winner")
	}
	spgTab := makeTable(fmt.Sprintf("Ablation A6: paired mechanism duels — SPG regime (n=%d)", n))
	dnhTab := makeTable(fmt.Sprintf("Ablation A6: paired mechanism duels — DNH regime (n=%d)", n))

	runRegime := func(tab *report.Table, lo, hi float64, label string) (map[string]*election.Comparison, error) {
		in, err := uniformInstance(graph.NewComplete(n), lo, hi, root.DeriveString(label))
		if err != nil {
			return nil, err
		}
		outs := make(map[string]*election.Comparison, len(duels))
		for _, d := range duels {
			cmp, err := election.CompareMechanisms(ctx, in, d.a, d.b, election.Options{
				Replications: reps, Seed: rng.Derive(cfg.Seed, "A6", label, d.name), Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			outs[d.name] = cmp
			tab.AddRow(d.name, report.F(cmp.MeanDiff), report.Interval(cmp.DiffLo, cmp.DiffHi),
				report.Itoa(cmp.AWins), report.Itoa(cmp.BWins), report.Itoa(cmp.Ties), cmp.Winner())
		}
		return outs, nil
	}

	spg, err := runRegime(spgTab, 0.30, 0.49, "spg")
	if err != nil {
		return nil, err
	}
	dnh, err := runRegime(dnhTab, 0.52, 0.80, "dnh")
	if err != nil {
		return nil, err
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{spgTab, dnhTab},
		Checks: []Check{
			check("SPG: threshold clearly beats direct", spg["threshold vs direct"].Winner() == "A",
				"diff %v", spg["threshold vs direct"].MeanDiff),
			check("SPG: small alpha beats large alpha", spg["alpha 0.02 vs alpha 0.10"].Winner() == "A",
				"diff %v", spg["alpha 0.02 vs alpha 0.10"].MeanDiff),
			check("SPG: the cap costs gain (uncapped at least ties)",
				spg["threshold vs capped w=8"].MeanDiff >= -0.01,
				"diff %v", spg["threshold vs capped w=8"].MeanDiff),
			check("DNH: everything ties with direct (nothing to gain, nothing lost)",
				dnh["threshold vs direct"].MeanDiff > -0.01 && dnh["threshold vs direct"].MeanDiff < 0.01,
				"diff %v", dnh["threshold vs direct"].MeanDiff),
		},
	}, nil
}
