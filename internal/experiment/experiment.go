// Package experiment defines and runs the reproduction experiments: one per
// figure (F1, F2), one per core lemma (L1, L2, L3, L4, L5, L7), the title
// phenomenon (V1), one per theorem (T2, T3, T4, T5), the Section 6 and
// related-work extensions (X1-X12), the design ablations (A1-A6), and the
// scale tier (S1, S2).
// DESIGN.md and EXPERIMENTS.md index them.
//
// Every experiment is deterministic given a Config and returns tables plus
// machine-checkable shape assertions ("Checks") that encode what the paper
// predicts qualitatively: who wins, what decays, what stays bounded.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// ErrUnknownExperiment reports a lookup of an unregistered experiment id.
var ErrUnknownExperiment = errors.New("experiment: unknown experiment")

// ErrTransient marks an experiment failure as retryable: an experiment that
// returns an error wrapping ErrTransient is re-attempted by the execution
// engine (with capped backoff) up to its retry budget. Determinism note:
// experiments derive all randomness from Config.Seed, so a retry re-runs
// the identical computation — appropriate for environmental failures
// (resource exhaustion), not for seed-dependent ones.
var ErrTransient = errors.New("experiment: transient failure")

// Config controls experiment size and determinism.
type Config struct {
	// Seed drives all randomness; equal configs give identical outputs.
	Seed uint64
	// Scale in (0, 1] shrinks instance sizes and replication counts, so the
	// full suite can run quickly in tests. 1 reproduces the headline runs.
	Scale float64
	// Workers bounds parallelism inside election evaluation (0 = all
	// cores).
	Workers int
	// LegacyEval routes the sweep-based experiments through point-by-point
	// election.EvaluateMechanism / fault.EvaluateUnderFaults calls instead
	// of the staged Plan/EvaluateSweep pipeline. The two paths are
	// bit-identical by the pipeline's equivalence contract; the flag exists
	// so cmd/reproduce can certify that contract on real output
	// (-legacy-eval), not to change any result.
	LegacyEval bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	return c
}

// scaleInt shrinks a size with Scale, keeping at least lo.
func (c Config) scaleInt(base, lo int) int {
	v := int(float64(base) * c.Scale)
	if v < lo {
		return lo
	}
	return v
}

// Check is one qualitative paper-shape assertion with its observed outcome.
type Check struct {
	Name   string
	Passed bool
	Detail string
}

// Outcome is an experiment's full result. It deliberately carries no
// wall-clock measurements: everything here feeds rendered tables, which must
// be byte-identical across runs and worker counts. Timing is observed by the
// execution engine around RunDefinition and reported on its telemetry-only
// event stream (see internal/lint/walltime for the static gate).
type Outcome struct {
	ID     string
	Title  string
	Claim  string // the paper's qualitative claim being tested
	Tables []*report.Table
	Checks []Check
	// Replications is the dominant Monte-Carlo replication count of the
	// experiment (0 for purely analytic experiments); the execution engine
	// reports it in ExperimentFinished events.
	Replications int
}

// Failed returns the names of failed checks.
func (o *Outcome) Failed() []string {
	var out []string
	for _, c := range o.Checks {
		if !c.Passed {
			out = append(out, c.Name)
		}
	}
	return out
}

// Definition describes a registered experiment.
type Definition struct {
	ID    string
	Title string
	Claim string
	Run   func(context.Context, Config) (*Outcome, error)
}

// registry holds all experiments in presentation order.
var registry = []Definition{
	{ID: "F1", Title: "Figure 1: star topology, dictatorship harms", Claim: "On the competent-center star, direct voting tends to 1 while any delegate-to-better mechanism concentrates all weight on the center, so P^M = 2/3 and the loss tends to 1/3.", Run: runF1},
	{ID: "F2", Title: "Figure 2: nine-voter example instance", Claim: "Algorithm 1 with threshold 0 and alpha=0.01 on the example instance yields an acyclic delegation graph in which every voter with a nonempty approval set delegates upward.", Run: runF2},
	{ID: "L1", Title: "Lemma 1: prefix deviation of independent sums", Claim: "For independent Bernoulli sums, the probability that some prefix beyond j falls below (1 - eps/j^{1/3}) of its mean decays exponentially in j^{1/3}.", Run: runL1},
	{ID: "L2", Title: "Lemma 2: recycle-sampled concentration", Claim: "A (j,c,n)-recycle-sampled sum stays above mu(X_n) - c*eps*n/j^{1/3} w.h.p.; the slack needed grows linearly with the partition complexity c.", Run: runL2},
	{ID: "L3", Title: "Lemma 3: anti-concentration do-no-harm", Claim: "With competencies in (beta, 1-beta), any mechanism delegating at most n^{1/2-eps} votes changes the outcome with probability tending to 0.", Run: runL3},
	{ID: "L4", Title: "Lemma 4: CLT for the direct-vote total", Claim: "With competencies bounded away from 0 and 1, the sum of direct votes converges to a normal distribution; the KS distance to the matching normal vanishes at the Berry-Esseen rate.", Run: runL4},
	{ID: "L5", Title: "Lemma 5: maximum sink weight bounds deviations", Claim: "If every sink has weight at most w, the realized correct weight deviates from its mean by more than sqrt(n^{1+eps} * w) only with probability e^{-Omega(n^eps)}.", Run: runL5},
	{ID: "L7", Title: "Lemma 7: increase in expectation on K_n", Claim: "Every delegation raises the expected number of correct votes by at least alpha, so mu(Y) >= mu(X) + (n-k)alpha, and the recycle-sampled sum concentrates above that bound.", Run: runL7},
	{ID: "V1", Title: "Variance manipulation (the title phenomenon)", Claim: "With mean competency below 1/2, delegation wins not by pushing the expected correct fraction past 1/2 but by inflating the outcome variance: concentrating weight on fewer independent sinks moves probability mass across the majority threshold.", Run: runV1},
	{ID: "T2", Title: "Theorem 2: complete graphs (Algorithm 1)", Claim: "On K_n with PC below 1/2 and enough delegation, Algorithm 1 achieves a constant positive gain (SPG); on bounded-competency instances its loss vanishes (DNH).", Run: runT2},
	{ID: "T3", Title: "Theorem 3: random d-regular sampling (Algorithm 2)", Claim: "Sampling d random neighbours per voter behaves like the complete graph with threshold j(d)n/d: positive gain under delegation, vanishing loss.", Run: runT3},
	{ID: "T4", Title: "Theorem 4: bounded-degree graphs", Claim: "With maximum degree at most n^{eps/(1+eps)}, any local mechanism gains when at least t voters delegate and does no harm under bounded competencies.", Run: runT4},
	{ID: "T5", Title: "Theorem 5: bounded minimum degree", Claim: "With minimum degree n^eps, the delegate-if-half-approved mechanism achieves SPG (Delegate(n) >= sqrt(n)) and DNH under bounded competencies.", Run: runT5},
	{ID: "X1", Title: "Extension: vote abstaining (Section 6)", Claim: "Allowing delegators to abstain preserves do-no-harm and keeps (a smaller) positive gain.", Run: runX1},
	{ID: "X2", Title: "Extension: weighted majority / multi-delegate (Section 6)", Claim: "Consulting k approved delegates and taking their majority performs at least as well as a single random delegate.", Run: runX2},
	{ID: "X3", Title: "Extension: real-world-like networks (Section 6)", Claim: "On Barabasi-Albert and community graphs, the Lemma 5 max-weight condition is measurable; hub concentration predicts where delegation is risky.", Run: runX3},
	{ID: "X4", Title: "Extension: probabilistic competencies (Section 6)", Claim: "With competencies drawn from a distribution (the Halpern et al. setting), below-1/2 families yield positive gain on almost every instance draw and no family shows nontrivial harm.", Run: runX4},
	{ID: "X5", Title: "Extension: connectivity vs gain on sparse topologies", Claim: "Rings, paths, and grids give tiny approval sets and little gain; richer connectivity (small-world, d-regular, complete) restores it — topology is what enables liquid democracy.", Run: runX5},
	{ID: "X6", Title: "Extension: voting-power concentration and token weights", Claim: "Delegation mechanisms trade dispersion for competence: concentration metrics (Gini, Nakamoto) rise along the mechanism ladder, weight caps tame them, and token-weighted DAO voting still gains while amplifying concentration.", Run: runX6},
	{ID: "X7", Title: "Extension: approvals estimated from track records", Claim: "With approval sets estimated from finite track records, misdelegation falls as history grows; estimation noise even adds gain below mean-1/2 (extra variance), but moderate histories measurably violate DNH where direct voting already wins — approval quality is load-bearing.", Run: runX7},
	{ID: "X8", Title: "Extension: rational delegation equilibria", Claim: "Best-response delegation with common-interest utility is a potential game: it converges to pure Nash equilibria that never fall below direct voting and typically match or beat the randomized mechanism.", Run: runX8},
	{ID: "X9", Title: "Extension: adaptive liquid democracy over sequential issues", Claim: "A community re-learning approval sets from each decided issue bootstraps liquid democracy from observable information: accuracy climbs from the direct-voting level and misdelegation decays with experience.", Run: runX9},
	{ID: "X10", Title: "Extension: degree-competency correlation (misinformation hubs)", Claim: "On scale-free graphs, approval-based delegation piles weight onto competent hubs but routes around incompetent ones — local approval filtering defends against influential-but-wrong voters.", Run: runX10},
	{ID: "X11", Title: "Extension: reputation-farming attacks and the weight-cap defence", Claim: "A coalition that farms a perfect track record can capture outsized delegated weight and steal an election the honest majority would win; the Lemma 5 weight cap bounds the capture and blunts the attack.", Run: runX11},
	{ID: "X12", Title: "Extension: spectral gap vs decentralized tally speed", Claim: "The structural symmetry that makes liquid democracy safe also makes it fast: push-sum gossip spreads the tally in rounds inversely related to the topology's spectral gap.", Run: runX12},
	{ID: "A1", Title: "Ablation: delegation threshold j(n)", Claim: "Small thresholds maximize delegation and gain in the SPG regime; very large thresholds converge to direct voting.", Run: runA1},
	{ID: "A2", Title: "Ablation: approval margin alpha", Claim: "Alpha trades per-delegation gain (>= alpha each) against the number of eligible delegations; partition complexity scales as 1/alpha.", Run: runA2},
	{ID: "A6", Title: "Ablation: paired mechanism duels", Claim: "Common-random-number pairing resolves the mechanism ordering: randomized threshold delegation beats direct and greedy in the SPG regime, small alpha beats large, caps cost a little gain, and everything ties in the DNH regime.", Run: runA6},
	{ID: "A5", Title: "Ablation: tie-breaking rule", Claim: "The ties-lose rule of Section 2.2 is asymptotically irrelevant: the three tie rules differ exactly by the tie probability, which vanishes as 1/sqrt(n).", Run: runA5},
	{ID: "A4", Title: "Ablation: mean-competency crossover", Claim: "Delegation's advantage collapses as the electorate's mean competency crosses 1/2: on K_n the gain converges to zero (direct voting already wins), while concentrating mechanisms flip from helpful to harmful.", Run: runA4},
	{ID: "A3", Title: "Ablation: exact DP vs Monte-Carlo engine", Claim: "The exact weighted-majority DP and the sampling engine agree within sampling error.", Run: runA3},
	{ID: "R1", Title: "Robustness: availability faults and recovery policies", Claim: "When sinks go down or voters abstain, do-no-harm degrades gracefully: losing the stranded weight hurts measurably, while fallback-to-direct and redelegation recover most of it; with no faults the recovery machinery is bit-for-bit invisible.", Run: runR1},
	{ID: "R2", Title: "Robustness: crash faults and partitions in the distributed protocol", Claim: "The crash-tolerant convergecast accounts for every weight unit under crash-stop faults, partitions, duplication and reordering (live + trapped == n), benign plans reproduce the fault-free run exactly, and the surviving election degrades only with the weight actually trapped at crashed nodes.", Run: runR2},
	{ID: "R3", Title: "Robustness: sustained delegation churn under incremental re-evaluation", Claim: "A retained evaluation scenario absorbs per-period delegation churn through in-place updates of a single persistent convolution tree while every period's P^M stays bit-identical to from-scratch exact scoring; below mean competency 1/2 the churned profiles still beat direct voting on average (the variance thesis is robust to who exactly delegates).", Run: runR3},
	{ID: "R4", Title: "Robustness: evolving electorates via add-voter and competency deltas", Claim: "Growing a preferential-attachment electorate one add-voter delta at a time, and replaying a partial-participation track record through sparse competency deltas, both keep the chained plan bit-identical to from-scratch instances at every step — incremental re-evaluation is exact on structurally evolving elections, where direct voting decays below mean 1/2 and misdelegation stays controlled as records accumulate.", Run: runR4},
	{ID: "S1", Title: "Scale: max-weight blowup on a streamed million-voter electorate", Claim: "Streaming a 10^6-voter electorate in fixed-size chunks, raising the delegation fraction concentrates weight on fewer sinks and inflates both the maximum sink weight and the standard deviation of the correct-vote count — the variance manipulation of the title — which in turn widens the certifiable interval; at moderate delegation the certificate from folded sufficient statistics stays inside the error budget, and the direct vote resolves through the ladder's normal tier within 1e-3, all without any worker materialising the full instance.", Run: runS1},
	{ID: "S2", Title: "Scale: approximation-ladder tier escalation and certified containment", Claim: "With a fixed 1e-3 error budget, the approximation ladder auto-selects the cheapest sound tier at every size — exact DP for small prefixes, FFT divide-and-conquer at the cost-model crossover, normal-plus-Hoeffding certification once concentration makes the analytic band tight — escalating monotonically with n and always returning an interval that contains the exact tail mass wherever the quadratic reference is feasible.", Run: runS2},
}

// All returns the experiment definitions in presentation order.
func All() []Definition {
	out := make([]Definition, len(registry))
	copy(out, registry)
	return out
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.ID
	}
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Definition, error) {
	for _, d := range registry {
		if d.ID == id {
			return d, nil
		}
	}
	return Definition{}, fmt.Errorf("%w: %q (known: %v)", ErrUnknownExperiment, id, IDs())
}

// Run executes one experiment by id. Cancelling ctx aborts the experiment
// between (and inside) its replication loops with ctx's error.
func Run(ctx context.Context, id string, cfg Config) (*Outcome, error) {
	def, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return RunDefinition(ctx, def, cfg)
}

// RunDefinition executes one definition directly, bypassing the registry
// lookup. This is the entry point the execution engine uses, and it lets
// tests schedule synthetic experiments.
func RunDefinition(ctx context.Context, def Definition, cfg Config) (*Outcome, error) {
	out, err := def.Run(ctx, cfg.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", def.ID, err)
	}
	out.ID = def.ID
	out.Title = def.Title
	out.Claim = def.Claim
	return out, nil
}

// RunAll executes every experiment in order. Cancelling ctx stops the
// sequence and returns the outcomes completed so far along with ctx's error.
func RunAll(ctx context.Context, cfg Config) ([]*Outcome, error) {
	outs := make([]*Outcome, 0, len(registry))
	for _, d := range registry {
		o, err := Run(ctx, d.ID, cfg)
		if err != nil {
			return outs, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// --- shared helpers ---

// uniformInstance builds an instance over top with competencies uniform in
// [lo, hi).
func uniformInstance(top graph.Topology, lo, hi float64, s *rng.Stream) (*core.Instance, error) {
	p := make([]float64, top.N())
	for i := range p {
		p[i] = lo + (hi-lo)*s.Float64()
	}
	return core.NewInstance(top, p)
}

// dedupeSizes removes duplicate entries from a non-decreasing size sweep
// (duplicates appear when Scale clamps the largest size onto the previous
// one).
func dedupeSizes(sizes []int) []int {
	out := sizes[:0]
	for i, v := range sizes {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// errf is a local alias for fmt.Errorf to keep experiment bodies compact.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// check builds a Check from a condition.
func check(name string, passed bool, detailFmt string, args ...any) Check {
	return Check{Name: name, Passed: passed, Detail: fmt.Sprintf(detailFmt, args...)}
}

// isNonIncreasing reports whether xs is non-increasing up to tol.
func isNonIncreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+tol {
			return false
		}
	}
	return true
}

// trendDown reports whether the last element is clearly below the first.
func trendDown(xs []float64, margin float64) bool {
	if len(xs) < 2 {
		return false
	}
	return xs[len(xs)-1] <= xs[0]-margin || (xs[0] <= margin && xs[len(xs)-1] <= margin)
}

// minFloat returns the minimum of xs (+Inf for empty).
func minFloat(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp
}
