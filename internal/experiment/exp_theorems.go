package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// spgSweep runs a mechanism over instances in the strong-positive-gain
// regime (mean competency below 1/2, bounded away from extremes) and a DNH
// regime (mean competency above 1/2 so delegation could only hurt), for a
// sweep of sizes. It returns the two tables plus the gain series.
type sweepResult struct {
	spgTable  *report.Table
	dnhTable  *report.Table
	spgGains  []float64
	dnhLosses []float64
	delegates []float64
	reps      int
}

// regimeBounds sets the competency ranges for the two regimes of a sweep.
// The SPG range must average below 1/2 (plausible changeability); the DNH
// range sits above 1/2 so delegation can only hurt through concentration.
type regimeBounds struct {
	spgLo, spgHi float64
	dnhLo, dnhHi float64
}

func defaultRegimes() regimeBounds {
	return regimeBounds{spgLo: 0.30, spgHi: 0.49, dnhLo: 0.52, dnhHi: 0.80}
}

func runRegimeSweep(
	ctx context.Context,
	cfg Config,
	title string,
	sizes []int,
	rb regimeBounds,
	buildTop func(n int, s *rng.Stream) (graph.Topology, error),
	buildMech func(n int) mechanism.Mechanism,
	reps int,
) (*sweepResult, error) {
	root := rng.New(cfg.Seed)
	out := &sweepResult{
		reps:     reps,
		spgTable: newGainTable(fmt.Sprintf("%s — SPG regime (p in [%g, %g])", title, rb.spgLo, rb.spgHi)),
		dnhTable: newGainTable(fmt.Sprintf("%s — DNH regime (p in [%g, %g])", title, rb.dnhLo, rb.dnhHi)),
	}
	for _, n := range sizes {
		top, err := buildTop(n, root.Derive(uint64(n)))
		if err != nil {
			return nil, err
		}
		mech := buildMech(n)

		spgIn, err := uniformInstance(top, rb.spgLo, rb.spgHi, root.Derive(uint64(n)*3+1))
		if err != nil {
			return nil, err
		}
		spgRes, err := election.EvaluateMechanism(ctx, spgIn, mech, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, title, fmt.Sprintf("n=%d", n), "spg"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		addGainRow(out.spgTable, n, spgRes)
		out.spgGains = append(out.spgGains, spgRes.Gain)
		out.delegates = append(out.delegates, spgRes.MeanDelegators)

		dnhIn, err := uniformInstance(top, rb.dnhLo, rb.dnhHi, root.Derive(uint64(n)*3+2))
		if err != nil {
			return nil, err
		}
		dnhRes, err := election.EvaluateMechanism(ctx, dnhIn, mech, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, title, fmt.Sprintf("n=%d", n), "dnh"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		addGainRow(out.dnhTable, n, dnhRes)
		out.dnhLosses = append(out.dnhLosses, -dnhRes.Gain)
	}
	return out, nil
}

// spgDNHChecks builds the standard SPG/DNH shape checks from a sweep.
func spgDNHChecks(sw *sweepResult, gamma, lossCap float64) []Check {
	minGain := minFloat(sw.spgGains)
	worstLoss := 0.0
	for _, l := range sw.dnhLosses {
		if l > worstLoss {
			worstLoss = l
		}
	}
	lastLoss := sw.dnhLosses[len(sw.dnhLosses)-1]
	return []Check{
		check("SPG: gain >= gamma on every size", minGain >= gamma,
			"min gain %.4f, gamma %.4f", minGain, gamma),
		check("delegation actually happens (Delegate(n) grows)",
			sw.delegates[len(sw.delegates)-1] > sw.delegates[0], "delegators %v", sw.delegates),
		check("DNH: loss bounded", worstLoss <= lossCap,
			"worst loss %.4f (cap %.4f)", worstLoss, lossCap),
		check("DNH: loss vanishing at the largest size", lastLoss <= lossCap/2 || lastLoss <= 0.01,
			"last loss %.4f", lastLoss),
	}
}

// runT2 validates Theorem 2: Algorithm 1 on complete graphs.
func runT2(ctx context.Context, cfg Config) (*Outcome, error) {
	sizes := dedupeSizes([]int{251, 501, 1001, cfg.scaleInt(2001, 1001)})
	sw, err := runRegimeSweep(ctx, cfg,
		"Theorem 2: Algorithm 1 on K_n (alpha=0.05, threshold j(n)=ceil(n^{1/3}))",
		sizes,
		defaultRegimes(),
		func(n int, _ *rng.Stream) (graph.Topology, error) { return graph.NewComplete(n), nil },
		func(n int) mechanism.Mechanism {
			j := int(math.Ceil(math.Cbrt(float64(n))))
			return mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(j)}
		},
		cfg.scaleInt(32, 8),
	)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Replications: sw.reps,
		Tables:       []*report.Table{sw.spgTable, sw.dnhTable},
		Checks:       spgDNHChecks(sw, 0.01, 0.05),
	}, nil
}

// runT3 validates Theorem 3: Algorithm 2 (random d-neighbour sampling).
func runT3(ctx context.Context, cfg Config) (*Outcome, error) {
	sizes := dedupeSizes([]int{251, 501, 1001, cfg.scaleInt(2001, 1001)})
	const d = 16
	sw, err := runRegimeSweep(ctx, cfg,
		"Theorem 3: Algorithm 2, d=16 random neighbours, j(d)=d/8",
		sizes,
		defaultRegimes(),
		func(n int, _ *rng.Stream) (graph.Topology, error) { return graph.NewComplete(n), nil },
		func(n int) mechanism.Mechanism {
			return mechanism.NeighborSampling{Alpha: 0.05, D: d, Threshold: mechanism.ConstantThreshold(d / 8)}
		},
		cfg.scaleInt(32, 8),
	)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Replications: sw.reps,
		Tables:       []*report.Table{sw.spgTable, sw.dnhTable},
		Checks:       spgDNHChecks(sw, 0.01, 0.05),
	}, nil
}

// runT4 validates Theorem 4: bounded-degree graphs, Delta <= ~n^{1/2}.
func runT4(ctx context.Context, cfg Config) (*Outcome, error) {
	sizes := dedupeSizes([]int{251, 501, 1001, cfg.scaleInt(2001, 1001)})
	sw, err := runRegimeSweep(ctx, cfg,
		"Theorem 4: random graphs with Delta <= ceil(n^{0.45}), threshold mechanism",
		sizes,
		defaultRegimes(),
		func(n int, s *rng.Stream) (graph.Topology, error) {
			maxDeg := int(math.Ceil(math.Pow(float64(n), 0.45)))
			return graph.RandomBoundedDegree(n, maxDeg, 8*n, s)
		},
		func(n int) mechanism.Mechanism {
			return mechanism.ApprovalThreshold{Alpha: 0.05}
		},
		cfg.scaleInt(32, 8),
	)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Replications: sw.reps,
		Tables:       []*report.Table{sw.spgTable, sw.dnhTable},
		Checks:       spgDNHChecks(sw, 0.005, 0.05),
	}, nil
}

// runT5 validates Theorem 5: bounded minimum degree with the
// half-neighbourhood rule.
func runT5(ctx context.Context, cfg Config) (*Outcome, error) {
	sizes := dedupeSizes([]int{250, 500, 1000, cfg.scaleInt(2000, 1000)})
	sw, err := runRegimeSweep(ctx, cfg,
		"Theorem 5: d-regular graphs with delta = ceil(n^{0.6}), half-neighbourhood rule",
		sizes,
		regimeBounds{spgLo: 0.45, spgHi: 0.53, dnhLo: 0.52, dnhHi: 0.80},
		func(n int, s *rng.Stream) (graph.Topology, error) {
			d := int(math.Ceil(math.Pow(float64(n), 0.6)))
			if (n*d)%2 != 0 {
				d++
			}
			return graph.RandomRegular(n, d, s)
		},
		func(n int) mechanism.Mechanism {
			return mechanism.HalfNeighborhood{Alpha: 0.02}
		},
		cfg.scaleInt(24, 8),
	)
	if err != nil {
		return nil, err
	}
	checks := spgDNHChecks(sw, 0.005, 0.05)
	// Theorem 5's Delegate(n) >= h >= sqrt(n) restriction: verify the
	// mechanism actually delegates that much in the SPG regime.
	lastN := float64(sizes[len(sizes)-1])
	checks = append(checks, check("Delegate(n) >= sqrt(n) in SPG regime",
		sw.delegates[len(sw.delegates)-1] >= math.Sqrt(lastN),
		"delegators %.1f, sqrt(n) %.1f", sw.delegates[len(sw.delegates)-1], math.Sqrt(lastN)))
	return &Outcome{
		Replications: sw.reps,
		Tables:       []*report.Table{sw.spgTable, sw.dnhTable},
		Checks:       checks,
	}, nil
}
