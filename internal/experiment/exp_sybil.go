package experiment

import (
	"context"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/history"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX11 mounts a reputation-farming attack on track-record-based liquid
// democracy: a coalition of b adversaries votes perfectly while reputations
// are being built, attracts delegations as the apparent experts, then
// defects on the target issue. The Lemma 5 weight cap is evaluated as the
// defence: it bounds how much weight the coalition can capture, converting
// a stolen election back into a narrow one.
func runX11(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1001, 301) // honest voters
	historyLen := 200
	const alpha = 0.05
	root := rng.New(cfg.Seed)

	blocs := []int{0, n / 100, n / 40, n / 20, n / 10}
	tab := report.NewTable(
		fmt.Sprintf("X11: reputation-farming coalitions (n=%d honest, history=%d, alpha=%g)", n, historyLen, alpha),
		"coalition size b", "coalition weight (uncapped)", "P uncapped", "P capped w=8", "capped coalition weight")

	type out struct {
		pUncapped, pCapped float64
		wUncapped          int
	}
	outs := make([]out, 0, len(blocs))
	// Shared exact-scoring scratch and memo across coalition sizes; cached
	// scores are bit-identical to recomputation (see election/cache.go).
	ws := prob.NewWorkspace()
	scores := election.NewScoreCache()
	for bi, b := range blocs {
		total := n + b
		s := root.Derive(uint64(bi) + 1)

		// Honest competencies in the DNH regime: direct voting would win.
		p := make([]float64, total)
		for i := 0; i < n; i++ {
			p[i] = 0.52 + 0.28*s.Float64()
		}
		// Adversaries: once the real vote happens they always vote wrong.
		for i := n; i < total; i++ {
			p[i] = 0
		}
		in, err := core.NewInstance(graph.NewComplete(total), p)
		if err != nil {
			return nil, err
		}

		// Track record: honest voters vote per competency; adversaries farm
		// a perfect record.
		honest, err := core.NewInstance(graph.NewComplete(total), p)
		if err != nil {
			return nil, err
		}
		tr, err := history.Simulate(honest, historyLen, s.DeriveString("record"))
		if err != nil {
			return nil, err
		}
		for i := n; i < total; i++ {
			tr.Scores[i] = historyLen // perfect farmed reputation
		}
		surrogate, err := tr.SurrogateInstance(in)
		if err != nil {
			return nil, err
		}

		evaluate := func(mech mechanism.Mechanism) (float64, int, error) {
			d, err := mech.Apply(surrogate, s.DeriveString(mech.Name()))
			if err != nil {
				return 0, 0, err
			}
			res, err := d.Resolve()
			if err != nil {
				return 0, 0, err
			}
			captured := 0
			for i := n; i < total; i++ {
				captured += res.Weight[i]
			}
			pm, err := election.ResolutionProbabilityExactCached(in, res, ws, scores)
			if err != nil {
				return 0, 0, err
			}
			return pm, captured, nil
		}

		pUncapped, wUncapped, err := evaluate(mechanism.ApprovalThreshold{Alpha: alpha})
		if err != nil {
			return nil, err
		}
		pCapped, wCapped, err := evaluate(mechanism.WeightCapped{
			Inner:     mechanism.ApprovalThreshold{Alpha: alpha},
			MaxWeight: 8,
		})
		if err != nil {
			return nil, err
		}
		outs = append(outs, out{pUncapped: pUncapped, pCapped: pCapped, wUncapped: wUncapped})
		tab.AddRow(report.Itoa(b), report.Itoa(wUncapped), report.F(pUncapped),
			report.F(pCapped), report.Itoa(wCapped))
	}

	last := len(outs) - 1
	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("no coalition, no harm", outs[0].pUncapped > 0.7,
				"P %v", outs[0].pUncapped),
			check("finding: even a tiny farmed coalition steals the uncapped election",
				outs[1].pUncapped < 0.5, "P %v with b=%d", outs[1].pUncapped, blocs[1]),
			check("the coalition captures outsized weight",
				outs[last].wUncapped > 5*blocs[last], "captured %d with b=%d", outs[last].wUncapped, blocs[last]),
			check("the Lemma 5 weight cap defends against small coalitions (b ~ 1-2.5%)",
				outs[1].pCapped > 0.7 && outs[2].pCapped > 0.7,
				"capped P %v / %v", outs[1].pCapped, outs[2].pCapped),
			check("finding: the cap's defence breaks once b*w approaches n/2",
				outs[last].pCapped <= outs[2].pCapped, "capped P %v (b=%d) vs %v (b=%d)",
				outs[last].pCapped, blocs[last], outs[2].pCapped, blocs[2]),
		},
	}, nil
}
