package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/core"
	"liquid/internal/dynamics"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/history"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// R3 and R4 certify the incremental re-evaluation path on real evolving
// elections. Both experiments score every step twice — once through the
// retained delta tree and once from scratch — and their headline checks
// demand Float64bits equality, so the committed reproduction output is
// itself a bit-identity certificate for the incremental engine. R3 churns
// one electorate's delegation profile (election.Scenario under
// dynamics.Churn); R4 evolves the electorate itself: Barabasi-Albert
// growth one add-voter delta at a time, then a partial-participation
// track-record replay whose surrogate plan advances through
// election.Plan.ApplyDelta (history.Replay).

// runR3 churns a complete-graph electorate's delegation profile for a few
// dozen periods and verifies each period's incrementally-patched P^M
// against from-scratch exact scoring of the period's snapshot.
func runR3(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(301, 61)
	periods := cfg.scaleInt(20, 6)
	const alpha = 0.05

	s := rng.New(rng.Derive(cfg.Seed, "R3", "instance"))
	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, s)
	if err != nil {
		return nil, err
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		return nil, err
	}
	churnSeed := rng.Derive(cfg.Seed, "R3", "churn")
	opts := dynamics.ChurnOptions{Alpha: alpha, Periods: periods, MovesPerPeriod: 5}
	steps, stats, err := dynamics.Churn(ctx, in, opts, churnSeed)
	if err != nil {
		return nil, err
	}

	tab := report.NewTable(
		fmt.Sprintf("R3: delegation churn on K_%d, p in (0.30, 0.49), alpha=%.2f (P^D=%s)", n, alpha, report.F(pd)),
		"period", "delegators", "P^M (incremental)", "P^M (scratch)", "bit-equal")
	mismatches := 0
	var pmAcc float64
	for _, st := range steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := &core.DelegationGraph{Delegate: append([]int(nil), st.Delegation...)}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		scratch, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		equal := math.Float64bits(st.PM) == math.Float64bits(scratch)
		if !equal {
			mismatches++
		}
		pmAcc += st.PM
		tab.AddRow(report.Itoa(st.Period), report.Itoa(st.Delegators),
			report.F(st.PM), report.F(scratch), boolCell(equal))
	}

	// Re-run the whole churn: equal seeds must reproduce every step.
	again, _, err := dynamics.Churn(ctx, in, opts, churnSeed)
	if err != nil {
		return nil, err
	}
	deterministic := len(again) == len(steps)
	for i := 0; deterministic && i < len(steps); i++ {
		if math.Float64bits(again[i].PM) != math.Float64bits(steps[i].PM) {
			deterministic = false
		}
	}
	meanPM := pmAcc / float64(len(steps))
	lastDelegators := steps[len(steps)-1].Delegators

	checks := []Check{
		check("incremental P^M is bit-identical to from-scratch scoring at every period",
			mismatches == 0, "%d/%d periods mismatched", mismatches, len(steps)),
		check("one retained tree absorbs the whole run: a single build, then in-place updates",
			stats.Builds == 1 && stats.Patches+stats.Rebuilds == uint64(periods-1),
			"builds %d, patches %d, rebuilds %d", stats.Builds, stats.Patches, stats.Rebuilds),
		check("equal seeds reproduce the churn trajectory bit-for-bit",
			deterministic, "replayed %d periods", len(again)),
		check("churn sustains a delegating population",
			lastDelegators > 0, "final period has %d delegators", lastDelegators),
		check("below mean 1/2, churned delegation beats direct voting on average (variance thesis)",
			meanPM > pd, "mean churned P^M %s vs P^D %s", report.F(meanPM), report.F(pd)),
	}
	return &Outcome{Tables: []*report.Table{tab}, Checks: checks}, nil
}

// runR4 evolves the electorate itself. Part one grows a Barabasi-Albert
// graph one add-voter delta at a time through a chained election.Plan,
// comparing the chained exact P^D against a from-scratch instance at every
// size. Part two replays a partial-participation track record
// (history.Replay): each period's sparse competency deltas advance the
// surrogate plan incrementally, and the recorded evaluation is re-run on a
// fresh plan built from the period's competency snapshot.
func runR4(ctx context.Context, cfg Config) (*Outcome, error) {
	const m0, mEdges = 5, 3
	target := cfg.scaleInt(160, 40)
	growSeed := rng.New(rng.Derive(cfg.Seed, "R4", "growth"))

	// Seed graph: K_{m0} as an explicit graph so add-voter deltas can
	// carry preferential-attachment edge lists.
	var seedEdges [][2]int
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			seedEdges = append(seedEdges, [2]int{u, v})
		}
	}
	g0, err := graph.NewGraphFromEdges(m0, seedEdges)
	if err != nil {
		return nil, err
	}
	p0 := make([]float64, m0)
	for i := range p0 {
		p0[i] = 0.30 + 0.19*growSeed.Float64()
	}
	in0, err := core.NewInstance(g0, p0)
	if err != nil {
		return nil, err
	}
	plan, err := election.NewPlan(in0, election.Options{Replications: 1, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	growth := report.NewTable(
		fmt.Sprintf("R4a: Barabasi-Albert growth %d -> %d voters via add-voter deltas (m=%d)", m0, target, mEdges),
		"n", "P^D (chained)", "P^D (scratch)", "bit-equal")
	degree := make([]int, m0, target)
	for i := range degree {
		degree[i] = m0 - 1
	}
	totalDeg := m0 * (m0 - 1)
	growMismatches := 0
	var pdFirst, pdLast float64
	direct := mechanism.Direct{}
	for n := m0; n < target; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Preferential attachment: mEdges distinct targets, degree-biased.
		targets := make([]int, 0, mEdges)
		for len(targets) < mEdges {
			r := growSeed.IntN(totalDeg)
			v := 0
			for r >= degree[v] {
				r -= degree[v]
				v++
			}
			dup := false
			for _, u := range targets {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, v)
			}
		}
		p := 0.30 + 0.19*growSeed.Float64()
		plan, err = plan.ApplyDelta(election.Delta{Kind: election.DeltaAddVoter, P: p, Edges: targets})
		if err != nil {
			return nil, err
		}
		for _, v := range targets {
			degree[v]++
		}
		degree = append(degree, mEdges)
		totalDeg += 2 * mEdges

		// The chained plan's P^D was maintained by the delta tree; an
		// evaluation at this size reads it back.
		results, err := election.EvaluateSweep(ctx, plan, []election.SweepPoint{
			{Mechanism: direct, Seed: rng.Derive(cfg.Seed, "R4", "growth-eval", report.Itoa(n))}})
		if err != nil {
			return nil, err
		}
		chained := results[0].PD
		fresh, err := core.NewInstance(plan.Instance().Topology(), plan.Instance().Competencies())
		if err != nil {
			return nil, err
		}
		scratch, err := election.DirectProbabilityExact(fresh)
		if err != nil {
			return nil, err
		}
		equal := math.Float64bits(chained) == math.Float64bits(scratch)
		if !equal {
			growMismatches++
		}
		newN := plan.Instance().N()
		if newN == m0+1 {
			pdFirst = chained
		}
		pdLast = chained
		if (newN-m0)%16 == 0 || newN == target {
			growth.AddRow(report.Itoa(newN), report.F(chained), report.F(scratch), boolCell(equal))
		}
	}
	growStats := plan.DeltaTreeStats()

	// Part two: track-record replay with sparse competency deltas.
	n2 := cfg.scaleInt(80, 24)
	reps := cfg.scaleInt(16, 8)
	replayPeriods := cfg.scaleInt(10, 4)
	s2 := rng.New(rng.Derive(cfg.Seed, "R4", "replay-instance"))
	in2, err := uniformInstance(graph.NewComplete(n2), 0.30, 0.60, s2)
	if err != nil {
		return nil, err
	}
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	ropts := history.ReplayOptions{
		Periods: replayPeriods, IssuesPerPeriod: 6, Participation: 0.5,
		Alpha: 0.05, Replications: reps, Workers: cfg.Workers,
	}
	rsteps, err := history.Replay(ctx, in2, mech, ropts, rng.Derive(cfg.Seed, "R4", "replay"))
	if err != nil {
		return nil, err
	}
	replay := report.NewTable(
		fmt.Sprintf("R4b: track-record replay on K_%d (%d issues/period, participation 0.5)", n2, ropts.IssuesPerPeriod),
		"period", "surrogate P^D", "surrogate P^M", "truth P^M", "misdeleg.", "bit-equal")
	replayMismatches := 0
	for _, st := range rsteps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fresh, err := core.NewInstance(in2.Topology(), st.Competencies)
		if err != nil {
			return nil, err
		}
		fplan, err := election.NewPlan(fresh, election.Options{Replications: reps, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		results, err := election.EvaluateSweep(ctx, fplan, []election.SweepPoint{
			{Mechanism: mech, Seed: st.EvalSeed}})
		if err != nil {
			return nil, err
		}
		equal := math.Float64bits(results[0].PD) == math.Float64bits(st.SurrogatePD) &&
			math.Float64bits(results[0].PM) == math.Float64bits(st.SurrogatePM)
		if !equal {
			replayMismatches++
		}
		replay.AddRow(report.Itoa(st.Period), report.F(st.SurrogatePD), report.F(st.SurrogatePM),
			report.F(st.TruthPM), report.F(st.Misdelegation), boolCell(equal))
	}
	firstMis := rsteps[0].Misdelegation
	lastMis := rsteps[len(rsteps)-1].Misdelegation

	checks := []Check{
		check("chained add-voter P^D is bit-identical to a from-scratch instance at every size",
			growMismatches == 0, "%d/%d sizes mismatched", growMismatches, target-m0),
		check("growth advances the P^D tree by patches",
			growStats.Patches > 0, "patches %d, rebuilds %d", growStats.Patches, growStats.Rebuilds),
		check("below mean 1/2, direct voting decays as the electorate grows",
			pdLast < pdFirst, "P^D %s at n=%d -> %s at n=%d",
			report.F(pdFirst), m0+1, report.F(pdLast), target),
		check("delta-chained surrogate evaluations are bit-identical to fresh plans at every period",
			replayMismatches == 0, "%d/%d periods mismatched", replayMismatches, len(rsteps)),
		check("misdelegation does not blow up as the record accumulates",
			lastMis <= firstMis+0.10, "misdelegation %s -> %s", report.F(firstMis), report.F(lastMis)),
	}
	return &Outcome{Tables: []*report.Table{growth, replay}, Checks: checks, Replications: reps}, nil
}

// boolCell renders a yes/no table cell.
func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
