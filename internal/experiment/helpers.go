package experiment

import (
	"liquid/internal/election"
	"liquid/internal/report"
)

// newGainTable creates the standard gain-sweep table used by most
// experiments.
func newGainTable(title string) *report.Table {
	return report.NewTable(title,
		"n", "delegators", "sinks", "max w", "P^D", "P^M", "gain", "gain 95% CI")
}

// addGainRow appends one election result to a gain table.
func addGainRow(tab *report.Table, n int, res *election.Result) {
	tab.AddRow(
		report.Itoa(n),
		report.F2(res.MeanDelegators),
		report.F2(res.MeanSinks),
		report.F2(res.MeanMaxWeight),
		report.F(res.PD),
		report.F(res.PM),
		report.F(res.Gain),
		report.Interval(res.GainLo, res.GainHi),
	)
}
