package experiment

import (
	"context"
	"fmt"

	"liquid/internal/adaptive"
	"liquid/internal/graph"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX9 traces the adaptive loop: a community deciding a sequence of
// issues, re-learning its approval sets from each outcome. Accuracy starts
// at the direct-voting level (nothing is known about anyone), climbs as
// track records sharpen, and misdelegation decays — liquid democracy
// bootstrapping itself from observable information only.
func runX9(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(501, 151)
	issues := cfg.scaleInt(200, 60)
	const alpha = 0.05
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}
	seq, err := adaptive.Run(in, adaptive.Options{
		Issues: issues,
		Alpha:  alpha,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	tab := report.NewTable(
		fmt.Sprintf("X9: learning curve over %d sequential issues (K_n, n=%d, alpha=%g)", issues, n, alpha),
		"issues decided", "P[correct] (mean of window)", "misdelegation", "max weight")

	// Report in geometric windows.
	windows := [][2]int{{0, 1}}
	for lo := 1; lo < issues; lo *= 2 {
		hi := lo * 2
		if hi > issues {
			hi = issues
		}
		windows = append(windows, [2]int{lo, hi})
		if hi == issues {
			break
		}
	}
	var lastWindowProb float64
	for _, w := range windows {
		var mis, maxW float64
		count := 0
		for _, st := range seq.Steps[w[0]:w[1]] {
			mis += st.Misdelegation
			maxW += float64(st.MaxWeight)
			count++
		}
		p := seq.MeanProb(w[0], w[1])
		lastWindowProb = p
		tab.AddRow(fmt.Sprintf("%d–%d", w[0], w[1]), report.F(p),
			report.F(mis/float64(count)), report.F2(maxW/float64(count)))
	}
	tab.AddRow("direct (reference)", report.F(seq.DirectProb), "-", "1.00")

	early := seq.MeanProb(1, min(11, issues))
	late := seq.MeanProb(issues-issues/10, issues)
	var misEarly, misLate float64
	for _, st := range seq.Steps[1:min(21, issues)] {
		misEarly += st.Misdelegation
	}
	misEarly /= float64(min(21, issues) - 1)
	tail := seq.Steps[issues-min(20, issues/3):]
	for _, st := range tail {
		misLate += st.Misdelegation
	}
	misLate /= float64(len(tail))

	return &Outcome{
		Replications: issues,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("the community learns: late accuracy beats early accuracy",
				late > early, "early %v late %v", early, late),
			check("late accuracy beats direct voting", late > seq.DirectProb+0.05,
				"late %v direct %v", late, seq.DirectProb),
			check("misdelegation decays with experience", misLate < misEarly,
				"early %v late %v", misEarly, misLate),
			check("final window is the best window so far", lastWindowProb >= early,
				"final %v early %v", lastWindowProb, early),
		},
	}, nil
}
