package experiment

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// testConfig shrinks every experiment enough to run in CI while keeping the
// qualitative shapes intact.
func testConfig() Config {
	return Config{Seed: 12345, Scale: 0.25}
}

func TestRegistryLookup(t *testing.T) {
	ids := IDs()
	if len(ids) != 37 {
		t.Fatalf("expected 37 experiments, got %d: %v", len(ids), ids)
	}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(context.Background(), "nope", testConfig()); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v", err)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].ID = "mutated"
	if All()[0].ID == "mutated" {
		t.Fatal("All must return a copy")
	}
}

// runAndCheck runs one experiment and asserts all its paper-shape checks
// pass.
func runAndCheck(t *testing.T, id string) *Outcome {
	t.Helper()
	out, err := Run(context.Background(), id, testConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if out.ID != id {
		t.Fatalf("outcome id %q", out.ID)
	}
	if len(out.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, c := range out.Checks {
		if !c.Passed {
			t.Errorf("%s check failed: %s (%s)", id, c.Name, c.Detail)
		}
	}
	// Tables must render.
	var buf bytes.Buffer
	for _, tab := range out.Tables {
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatalf("%s rendered nothing", id)
	}
	return out
}

func TestF1Star(t *testing.T)              { runAndCheck(t, "F1") }
func TestF2Example(t *testing.T)           { runAndCheck(t, "F2") }
func TestL1PrefixDeviation(t *testing.T)   { runAndCheck(t, "L1") }
func TestL2Recycle(t *testing.T)           { runAndCheck(t, "L2") }
func TestL3AntiConcentration(t *testing.T) { runAndCheck(t, "L3") }
func TestL4CLT(t *testing.T)               { runAndCheck(t, "L4") }
func TestL5MaxWeight(t *testing.T)         { runAndCheck(t, "L5") }
func TestL7Expectation(t *testing.T)       { runAndCheck(t, "L7") }
func TestV1Variance(t *testing.T)          { runAndCheck(t, "V1") }

func TestT2Complete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "T2")
}

func TestT3DRegular(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "T3")
}

func TestT4BoundedDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "T4")
}

func TestT5MinDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "T5")
}

func TestX1Abstention(t *testing.T)                { runAndCheck(t, "X1") }
func TestX2MultiDelegate(t *testing.T)             { runAndCheck(t, "X2") }
func TestX3RealWorld(t *testing.T)                 { runAndCheck(t, "X3") }
func TestX4ProbabilisticCompetencies(t *testing.T) { runAndCheck(t, "X4") }
func TestX5SparseTopologies(t *testing.T)          { runAndCheck(t, "X5") }
func TestX6PowerConcentration(t *testing.T)        { runAndCheck(t, "X6") }
func TestX7TrackRecords(t *testing.T)              { runAndCheck(t, "X7") }
func TestX8Equilibria(t *testing.T)                { runAndCheck(t, "X8") }
func TestX9Adaptive(t *testing.T)                  { runAndCheck(t, "X9") }
func TestX10Homophily(t *testing.T)                { runAndCheck(t, "X10") }
func TestX11ReputationFarming(t *testing.T)        { runAndCheck(t, "X11") }
func TestX12GossipSpectral(t *testing.T)           { runAndCheck(t, "X12") }
func TestA1Threshold(t *testing.T)                 { runAndCheck(t, "A1") }
func TestA2Alpha(t *testing.T)                     { runAndCheck(t, "A2") }
func TestA3Engines(t *testing.T)                   { runAndCheck(t, "A3") }
func TestA4Crossover(t *testing.T)                 { runAndCheck(t, "A4") }
func TestA5TieRules(t *testing.T)                  { runAndCheck(t, "A5") }
func TestA6PairedDuels(t *testing.T)               { runAndCheck(t, "A6") }
func TestR2ProtocolFaults(t *testing.T)            { runAndCheck(t, "R2") }
func TestR3DelegationChurn(t *testing.T)           { runAndCheck(t, "R3") }
func TestR4EvolvingElectorates(t *testing.T)       { runAndCheck(t, "R4") }

func TestS2LadderEscalation(t *testing.T) { runAndCheck(t, "S2") }

func TestS1StreamedMillionVoters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "S1")
}

func TestR1AvailabilityFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "R1")
}

func TestOutcomeFailedNames(t *testing.T) {
	o := &Outcome{Checks: []Check{
		{Name: "ok", Passed: true},
		{Name: "bad", Passed: false},
	}}
	failed := o.Failed()
	if len(failed) != 1 || failed[0] != "bad" {
		t.Fatalf("Failed() = %v", failed)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(context.Background(), "F2", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), "F2", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	for _, tab := range a.Tables {
		if err := tab.Render(&bufA); err != nil {
			t.Fatal(err)
		}
	}
	for _, tab := range b.Tables {
		if err := tab.Render(&bufB); err != nil {
			t.Fatal(err)
		}
	}
	if bufA.String() != bufB.String() {
		t.Fatal("same config must reproduce identical tables")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.Scale != 1 {
		t.Fatalf("defaults %+v", c)
	}
	if got := (Config{Scale: 0.5}).scaleInt(100, 10); got != 50 {
		t.Fatalf("scaleInt = %d", got)
	}
	if got := (Config{Scale: 0.01}.withDefaults()).scaleInt(100, 10); got != 10 {
		t.Fatalf("scaleInt floor = %d", got)
	}
}
