package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX12 connects the paper's structural-symmetry thesis to distributed
// performance: the same topology property that governs delegation quality
// (connectivity without extreme asymmetry) governs how fast a fully
// decentralized tally spreads. We measure the spectral gap of each
// topology and the push-sum rounds needed for every node to learn the
// result within 1%: rounds should fall as the gap grows.
func runX12(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(400, 150)
	if n%2 != 0 {
		n++
	}
	// Average over several gossip runs: a single run's random routing is
	// noisy at small n.
	const gossipRuns = 3
	root := rng.New(cfg.Seed)

	type topDef struct {
		name  string
		build func(s *rng.Stream) (graph.Topology, error)
	}
	tops := []topDef{
		// A pure ring mixes in Theta(n^2 log(1/eps)) rounds, which makes the
		// budget seed-marginal; the beta=0.01 small-world is the "almost a
		// ring" slow end with a handful of shortcuts.
		{"ws k=6 beta=0.01", func(s *rng.Stream) (graph.Topology, error) {
			return graph.WattsStrogatz(n, 6, 0.01, s)
		}},
		{"ws k=6 beta=0.05", func(s *rng.Stream) (graph.Topology, error) {
			return graph.WattsStrogatz(n, 6, 0.05, s)
		}},
		{"ws k=6 beta=0.3", func(s *rng.Stream) (graph.Topology, error) {
			return graph.WattsStrogatz(n, 6, 0.3, s)
		}},
		{"random 6-regular", func(s *rng.Stream) (graph.Topology, error) {
			return graph.RandomRegular(n, 6, s)
		}},
		{"random 16-regular", func(s *rng.Stream) (graph.Topology, error) {
			return graph.RandomRegular(n, 16, s)
		}},
	}

	tab := report.NewTable(
		fmt.Sprintf("X12: spectral gap vs push-sum convergence (n=%d, eps=1%%)", n),
		"topology", "spectral gap", "1/gap", "gossip rounds to 1%")

	// Initial values: a fixed 60/40 split so the truth is 0.6.
	values := make([]float64, n)
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		weights[v] = 1
		if v%5 < 3 {
			values[v] = 1
		}
	}

	gaps := make([]float64, 0, len(tops))
	rounds := make([]float64, 0, len(tops))
	for i, td := range tops {
		top, err := td.build(root.Derive(uint64(i) + 1))
		if err != nil {
			return nil, err
		}
		gap := graph.SpectralGapEstimate(top, 400, root.Derive(uint64(i)*31+7))
		total := 0
		for g := 0; g < gossipRuns; g++ {
			r, err := localsim.PushSumConvergenceRounds(ctx, top, values, weights, 0.01, 400000,
				rng.Derive(cfg.Seed, "X12", td.name, fmt.Sprintf("run=%d", g)))
			if err != nil {
				return nil, err
			}
			total += r
		}
		mean := float64(total) / gossipRuns
		gaps = append(gaps, gap)
		rounds = append(rounds, mean)
		tab.AddRow(td.name, report.G(gap), report.F2(1/math.Max(gap, 1e-9)), report.F2(mean))
	}

	// Rank correlation: larger gap must mean no more rounds (allowing ties
	// from the 10-round check granularity).
	// Allow one 10-round check-grid step of slack and only compare clearly
	// separated gaps (3x), since near-ring realizations vary at small n.
	monotone := true
	for i := 0; i < len(tops); i++ {
		for j := 0; j < len(tops); j++ {
			if gaps[i] > 3*gaps[j] && rounds[i] > rounds[j]+10 {
				monotone = false
			}
		}
	}
	return &Outcome{
		Replications: gossipRuns,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("bigger spectral gap never needs more gossip rounds", monotone,
				"gaps %v rounds %v", gaps, rounds),
			check("the near-ring is the slowest topology", rounds[0] >= maxFloat(rounds[1:])-10,
				"rounds %v", rounds),
			check("expanders converge fast", rounds[len(rounds)-1] <= 200,
				"rounds %v", rounds[len(rounds)-1]),
		},
	}, nil
}

// maxFloat returns the maximum of xs (0 for empty).
func maxFloat(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
