package experiment

import (
	"context"
	"math"
	"runtime"

	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
	"liquid/internal/scale"
)

// runS1 streams a million-voter electorate through the chunk fold and
// measures the paper's variance-manipulation phenomenon at scale: as the
// delegation fraction grows, votes concentrate on fewer sinks, the maximum
// sink weight blows up, and the standard deviation of the correct-vote count
// inflates — which in turn widens the certifiable majority interval. At
// moderate delegation the certificate from the folded sufficient statistics
// stays inside the error budget, and no worker ever holds the full
// electorate.
func runS1(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1_000_000, 20_000)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The certified-within-budget check uses the headline 1e-3 budget only
	// once the electorate is large enough for the concentration bounds to
	// bite; at heavily scaled-down sizes the honest certificate is wider.
	budget := 0.25
	if n >= 100_000 {
		budget = 1e-3
	}

	fracs := []float64{0, 0.25, 0.5, 0.75, 0.95}
	tab := report.NewTable("S1: streamed electorate, delegation fraction vs weight blowup (n = "+report.Itoa(n)+")",
		"frac", "sinks", "delegators", "max w", "chain", "sigma", "P^M", "half-width", "tier")

	seed := rng.Derive(cfg.Seed, "S1", "stream")
	var first, last *scale.MajorityResult
	delegators := make([]int, 0, len(fracs))
	halfWidths := make([]float64, 0, len(fracs))
	var firstInstance *scale.StreamInstance
	for _, frac := range fracs {
		s, err := scale.New(scale.Spec{N: n, Seed: seed, Low: 0.3, High: 0.6, DelegateFrac: frac})
		if err != nil {
			return nil, err
		}
		if firstInstance == nil {
			firstInstance = s
		}
		res, err := scale.EvaluateMajority(ctx, s, workers)
		if err != nil {
			return nil, err
		}
		tab.AddRow(
			report.F2(frac),
			report.Itoa(int(res.Stats.Sinks)),
			report.Itoa(int(res.Stats.Delegators)),
			report.Itoa(int(res.Stats.MaxWeight)),
			report.Itoa(int(res.Stats.LongestChain)),
			report.F2(math.Sqrt(res.Sum.Variance())),
			report.G(res.Interval.Point),
			report.G(res.Interval.HalfWidth),
			res.Interval.Tier.String(),
		)
		delegators = append(delegators, res.Stats.Delegators)
		halfWidths = append(halfWidths, res.Interval.HalfWidth)
		if first == nil {
			first = res
		}
		last = res
	}

	// The direct vote over the same competency stream (frac-independent)
	// through the approximation ladder: a budgeted million-voter query must
	// resolve at the normal tier, certified within budget.
	direct, err := prob.LadderMajority(ctx, firstInstance, prob.LadderOptions{ErrorBudget: 1e-3, Workers: workers})
	if err != nil {
		return nil, err
	}
	dtab := report.NewTable("S1: direct vote via prob.Ladder (error budget 1e-3)",
		"n", "tier", "P^D", "half-width")
	dtab.AddRow(report.Itoa(n), direct.Tier.String(), report.G(direct.Point), report.G(direct.HalfWidth))

	conserved, partitioned := true, true
	for _, res := range []*scale.MajorityResult{first, last} {
		if res.Stats.WeightSum != int64(n) {
			conserved = false
		}
		if res.Stats.Sinks+res.Stats.Delegators != n {
			partitioned = false
		}
	}
	monotone := true
	for i := 1; i < len(delegators); i++ {
		if delegators[i] < delegators[i-1] {
			monotone = false
		}
	}
	// The certificate can only be tight while weights stay moderate: the
	// half-width check covers the fractions up to 0.5. Past that the blowup
	// itself widens the certifiable band — which is the point of the
	// companion certificate-widens check below.
	maxModerateHW := 0.0
	for i, hw := range halfWidths {
		if fracs[i] <= 0.5 && hw > maxModerateHW {
			maxModerateHW = hw
		}
	}

	return &Outcome{
		Tables: []*report.Table{tab, dtab},
		Checks: []Check{
			check("weight-conserved", conserved, "WeightSum endpoints %d, %d (n = %d)", first.Stats.WeightSum, last.Stats.WeightSum, n),
			check("sink-delegator-partition", partitioned, "sinks + delegators = %d, %d (n = %d)", first.Stats.Sinks+first.Stats.Delegators, last.Stats.Sinks+last.Stats.Delegators, n),
			check("delegators-monotone", monotone, "delegator counts %v along nested fractions", delegators),
			check("max-weight-blowup", last.Stats.MaxWeight > first.Stats.MaxWeight && last.Stats.MaxWeight >= 8,
				"max weight %d at frac %.2f vs %d direct", last.Stats.MaxWeight, fracs[len(fracs)-1], first.Stats.MaxWeight),
			check("variance-inflation", last.Sum.Variance() > first.Sum.Variance(),
				"sigma %.2f at frac %.2f vs %.2f direct", math.Sqrt(last.Sum.Variance()), fracs[len(fracs)-1], math.Sqrt(first.Sum.Variance())),
			check("certified-within-budget", maxModerateHW <= budget, "max half-width %g at frac <= 0.5 vs budget %g", maxModerateHW, budget),
			check("certificate-widens-with-blowup", halfWidths[len(halfWidths)-1] > halfWidths[0],
				"half-width %g at frac %.2f vs %g direct", halfWidths[len(halfWidths)-1], fracs[len(fracs)-1], halfWidths[0]),
			check("direct-tier-normal", direct.Tier == prob.TierNormal, "ladder chose %v", direct.Tier),
			check("direct-within-budget", direct.HalfWidth <= 1e-3, "half-width %g", direct.HalfWidth),
		},
	}, nil
}

// runS2 walks the approximation ladder up a single growing instance: for each
// prefix size the auto tier must be the cheapest rung meeting the 1e-3
// budget, escalating exact -> FFT -> normal as n grows, and every certified
// interval must contain the exact tail mass wherever the quadratic reference
// is still feasible.
func runS2(ctx context.Context, cfg Config) (*Outcome, error) {
	sizes := dedupeSizes([]int{
		cfg.scaleInt(64, 16),
		cfg.scaleInt(256, 32),
		cfg.scaleInt(1024, 128),
		cfg.scaleInt(4096, 512),
		cfg.scaleInt(16384, 2048),
		cfg.scaleInt(65536, 8192),
	})
	const budget = 1e-3
	const exactRefMax = 4096

	root := rng.New(cfg.Seed)
	s := root.DeriveString("instance")
	ps := make([]float64, sizes[len(sizes)-1])
	for i := range ps {
		ps[i] = 0.3 + 0.3*s.Float64()
	}

	tab := report.NewTable("S2: ladder tier selection vs n (error budget 1e-3)",
		"n", "tier", "P(majority)", "half-width", "exact", "|delta|", "contained")

	tiers := make([]prob.Tier, 0, len(sizes))
	monotone, matchesCostModel, contained, withinBudget := true, true, true, true
	for _, n := range sizes {
		seq := prob.SliceSeq{PS: ps[:n]}
		auto, err := prob.LadderMajority(ctx, seq, prob.LadderOptions{ErrorBudget: budget, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, auto.Tier)
		if len(tiers) > 1 && auto.Tier < tiers[len(tiers)-2] {
			monotone = false
		}
		if auto.Tier != prob.TierNormal && auto.Tier != prob.ClassifyExactTier(n) {
			matchesCostModel = false
		}
		if auto.HalfWidth > budget {
			withinBudget = false
		}

		exactCell, deltaCell, containedCell := "-", "-", "-"
		if n <= exactRefMax {
			exact, err := prob.LadderMajority(ctx, seq, prob.LadderOptions{Force: prob.TierExact, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			if !auto.Contains(exact.Point) {
				contained = false
			}
			exactCell = report.F(exact.Point)
			deltaCell = report.G(math.Abs(auto.Point - exact.Point))
			containedCell = "yes"
			if !auto.Contains(exact.Point) {
				containedCell = "NO"
			}
		}
		tab.AddRow(report.Itoa(n), auto.Tier.String(), report.F(auto.Point), report.G(auto.HalfWidth),
			exactCell, deltaCell, containedCell)
	}

	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("tier-monotone-escalation", monotone, "tiers %v along sizes %v", tiers, sizes),
			check("smallest-is-exact", tiers[0] == prob.TierExact, "n = %d chose %v", sizes[0], tiers[0]),
			check("largest-is-normal", tiers[len(tiers)-1] == prob.TierNormal, "n = %d chose %v", sizes[len(sizes)-1], tiers[len(tiers)-1]),
			check("kernel-tier-matches-cost-model", matchesCostModel, "every kernel rung agrees with prob.ClassifyExactTier"),
			check("containment", contained, "auto intervals contain the exact tail up to n = %d", exactRefMax),
			check("halfwidth-within-budget", withinBudget, "all certified half-widths <= %g", budget),
		},
	}, nil
}
