package experiment

import (
	"fmt"
	"testing"

	"liquid/internal/rng"
)

// TestSweepSeedsPairwiseDistinct is the regression guard for the retired
// cfg.Seed arithmetic (Seed + uint64(alpha*1000), Seed ^ uint64(n), ...),
// which collided across sweep points and even across experiments for small
// parameter values. It reconstructs every labelled derivation the experiment
// sweeps perform and asserts the seeds are pairwise distinct — within each
// sweep AND globally across experiments sharing the same root seed.
func TestSweepSeedsPairwiseDistinct(t *testing.T) {
	const root = 1 // the default Config seed, the worst case for arithmetic

	var seeds []uint64
	var names []string
	add := func(name string, labels ...string) {
		seeds = append(seeds, rng.Derive(root, labels...))
		names = append(names, name)
	}

	// A1: threshold sweep (j values for the scaled n=301 run).
	for _, j := range []int{1, 6, 18, 75, 150, 270} {
		add(fmt.Sprintf("A1 j=%d", j), "A1", fmt.Sprintf("j=%d", j))
	}
	// A2: the alpha sweep whose old derivation Seed+uint64(alpha*1000)
	// collided with A1's Seed+uint64(j) at j in {10, 20, 50, 100, 150}.
	for _, alpha := range []float64{0.01, 0.02, 0.05, 0.1, 0.15} {
		add(fmt.Sprintf("A2 alpha=%g", alpha), "A2", fmt.Sprintf("alpha=%g", alpha))
	}
	// A4: mean-competency crossover, both topologies.
	for _, mu := range []float64{0.35, 0.40, 0.45, 0.48, 0.52, 0.55, 0.60, 0.65} {
		add(fmt.Sprintf("A4 mu=%g kn", mu), "A4", fmt.Sprintf("mu=%g", mu), "kn")
		add(fmt.Sprintf("A4 mu=%g star", mu), "A4", fmt.Sprintf("mu=%g", mu), "star")
	}
	// A6: paired duels per regime.
	for _, duel := range []string{"threshold vs direct", "threshold vs greedy",
		"threshold vs capped w=8", "alpha 0.02 vs alpha 0.10"} {
		for _, regime := range []string{"spg", "dnh"} {
			add("A6 "+duel+" "+regime, "A6", regime, duel)
		}
	}
	// T2-T5: size sweeps in both regimes. The old Seed^n (spg) vs
	// Seed^(n<<1) (dnh) scheme collided whenever one size was double
	// another — exactly the case for T5's 250/500/1000/2000 ladder.
	for _, title := range []string{
		"Theorem 2: Algorithm 1 on K_n (alpha=0.05, threshold j(n)=ceil(n^{1/3}))",
		"Theorem 3: Algorithm 2, d=16 random neighbours, j(d)=d/8",
		"Theorem 4: random graphs with Delta <= ceil(n^{0.45}), threshold mechanism",
		"Theorem 5: d-regular graphs with delta = ceil(n^{0.6}), half-neighbourhood rule",
	} {
		for _, n := range []int{250, 251, 500, 501, 1000, 1001, 2000, 2001} {
			for _, regime := range []string{"spg", "dnh"} {
				add(fmt.Sprintf("%.9s n=%d %s", title, n, regime),
					title, fmt.Sprintf("n=%d", n), regime)
			}
		}
	}
	// X1: abstention sweep, both regimes (old scheme: q*100 and q*100+7,
	// colliding across regimes when q steps by 0.07).
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		add(fmt.Sprintf("X1 q=%g spg", q), "X1", fmt.Sprintf("q=%g", q), "spg")
		add(fmt.Sprintf("X1 q=%g dnh", q), "X1", fmt.Sprintf("q=%g", q), "dnh")
	}
	// X2: multi-delegate k sweep.
	for _, k := range []int{1, 3, 5, 9} {
		add(fmt.Sprintf("X2 k=%d", k), "X2", fmt.Sprintf("k=%d", k))
	}
	// X3 / X5 / X12: named-topology sweeps.
	for _, name := range []string{"BA m=2", "BA m=8", "community k=10", "ER dense"} {
		add("X3 "+name+" spg", "X3", name, "spg")
		add("X3 "+name+" dnh", "X3", name, "dnh")
	}
	for _, name := range []string{"cycle", "path", "grid",
		"small-world k=8 beta=0.2", "random 8-regular", "complete"} {
		add("X5 "+name, "X5", name)
	}
	for _, name := range []string{"ws k=6 beta=0.01", "ws k=6 beta=0.05",
		"ws k=6 beta=0.3", "random 6-regular", "random 16-regular"} {
		for g := 0; g < 3; g++ {
			add(fmt.Sprintf("X12 %s run=%d", name, g), "X12", name, fmt.Sprintf("run=%d", g))
		}
	}
	// X8: equilibrium trials (old scheme Seed+trial collided with A4's
	// Seed+i and X5's Seed+i).
	for trial := 0; trial < 8; trial++ {
		add(fmt.Sprintf("X8 trial=%d", trial), "X8", fmt.Sprintf("trial=%d", trial))
	}
	// X10: assignment kinds. The old Seed+uint64(len(kind)) collided for
	// any two kinds of equal length.
	for _, kind := range []string{"hubs most competent", "hubs least competent", "uncorrelated"} {
		add("X10 "+kind, "X10", kind)
	}
	// R1: availability-fault sweep (seed shared across policies on purpose
	// for paired comparisons, so only (regime, topology, rate) points are
	// derived).
	for _, reg := range []string{"coin-flip", "competent"} {
		for _, topo := range []string{"K_n", "Rand(n,16)", "bounded-deg"} {
			for _, q := range []float64{0, 0.10, 0.20, 0.30} {
				add(fmt.Sprintf("R1 %s %s down=%g", reg, topo, q), "R1", reg, topo, fmt.Sprintf("down=%g", q))
			}
			add("R1 "+reg+" "+topo+" abstain point", "R1", reg, topo, "down=0.1+abstain")
		}
	}
	// R2: protocol-level fault trials; the trial seed excludes the cell
	// name on purpose (all fault cells degrade the same realization, so
	// cell comparisons are paired), and each trial derives "plan" and
	// "run" sub-seeds.
	for _, topo := range []string{"K_n", "Rand(n,16)", "bounded-deg"} {
		for trial := 0; trial < 4; trial++ {
			trialSeed := rng.Derive(root, "R2", topo, fmt.Sprintf("trial=%d", trial))
			seeds = append(seeds, rng.Derive(trialSeed, "plan"), rng.Derive(trialSeed, "run"))
			names = append(names,
				fmt.Sprintf("R2 %s trial=%d plan", topo, trial),
				fmt.Sprintf("R2 %s trial=%d run", topo, trial))
		}
	}

	seen := make(map[uint64]int, len(seeds))
	for i, s := range seeds {
		if j, dup := seen[s]; dup {
			t.Errorf("seed collision between %q and %q (%#x)", names[j], names[i], s)
		}
		seen[s] = i
	}
	if len(seen) != len(seeds) {
		t.Fatalf("%d distinct seeds from %d derivations", len(seen), len(seeds))
	}
}

// TestNoSeedArithmeticRegression documents why the arithmetic scheme was
// retired: the exact collisions it produced. Each pair below derived the SAME
// stream under the old code and now must differ.
func TestNoSeedArithmeticRegression(t *testing.T) {
	pairs := [][2][]string{
		// Old: Seed+uint64(0.05*1000)=Seed+50 (A2) vs Seed+uint64(50) (A1 j=50).
		{{"A2", "alpha=0.05"}, {"A1", "j=50"}},
		// Old: Seed^500<<1 (T5 dnh, n=500) vs Seed^1000 (T5 spg, n=1000).
		{{"T5", "n=500", "dnh"}, {"T5", "n=1000", "spg"}},
		// Old: Seed+uint64(len("hubs most competent")) vs len("hubs least competent").
		{{"X10", "hubs most competent"}, {"X10", "hubs least competent"}},
		// Old: X1 q=0 dnh (Seed+7) vs X3 i=0 +... cross-experiment overlap class.
		{{"X1", "q=0", "dnh"}, {"X3", "BA m=2", "spg"}},
	}
	for _, pr := range pairs {
		a := rng.Derive(1, pr[0]...)
		b := rng.Derive(1, pr[1]...)
		if a == b {
			t.Errorf("Derive(1, %v) == Derive(1, %v) == %#x", pr[0], pr[1], a)
		}
	}
}
