package experiment

import (
	"context"
	"math"

	"liquid/internal/graph"
	"liquid/internal/recycle"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runL7 validates Lemma 7, the paper's expectation engine for Theorem 2:
// on K_n with threshold j(n), the delegated outcome sequence Y satisfies
//
//	mu(Y) >= mu(X) + (n - k) * alpha
//
// (each of the n-k delegations raises the expectation by at least alpha,
// since every approved delegate is at least alpha more competent), and the
// realized sum concentrates: Y >= mu(X) + (n-k)alpha - eps*n/j^{1/3} w.h.p.
// We compute mu(Y) exactly from the recycle-sampling correspondence and
// measure the realization tail.
func runL7(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(4001, 1001)
	reps := cfg.scaleInt(300, 60)
	const eps = 1.0
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}
	muX := 0.0
	for i := 0; i < n; i++ {
		muX += in.Competency(i)
	}

	tab := report.NewTable("Lemma 7: increase in expectation on K_n (exact recycle means)",
		"alpha", "threshold j(n)", "delegators n-k", "mu(X)", "mu(Y)", "mu(Y)-mu(X)", "(n-k)*alpha", "tail failures")

	type cfgRow struct {
		alpha     float64
		threshold int
	}
	rows := []cfgRow{
		{0.02, 1},
		{0.05, 1},
		{0.05, int(math.Ceil(math.Cbrt(float64(n))))},
		{0.10, 1},
	}

	holds := true
	tailOK := true
	var gaps, promised []float64
	for _, rc := range rows {
		g, err := recycle.FromCompleteDelegation(in, rc.alpha, rc.threshold)
		if err != nil {
			return nil, err
		}
		muY := g.MeanSum()
		delegators := 0
		for i := range g.UpTo {
			if g.UpTo[i] > 0 {
				delegators++
			}
		}
		promise := float64(delegators) * rc.alpha
		gap := muY - muX
		gaps = append(gaps, gap)
		promised = append(promised, promise)
		if gap < promise-1e-9 {
			holds = false
		}

		// Concentration: realized sums stay above
		// mu(X) + (n-k)alpha - eps*n/j^{1/3}.
		j := float64(g.J)
		if j < 1 {
			j = 1
		}
		bound := muX + promise - eps*float64(n)/math.Cbrt(j)
		failures := 0
		s := root.Derive(uint64(rc.alpha*1000) + uint64(rc.threshold))
		// Quantized batched kernel; see recycle.Realizer.SumFast.
		rz := g.Realizer()
		for r := 0; r < reps; r++ {
			if float64(rz.SumFast(s)) < bound {
				failures++
			}
		}
		if float64(failures)/float64(reps) > 0.05 {
			tailOK = false
		}
		tab.AddRow(report.G(rc.alpha), report.Itoa(rc.threshold), report.Itoa(delegators),
			report.F2(muX), report.F2(muY), report.F2(gap), report.F2(promise),
			report.Itoa(failures))
	}

	// The realized expectation boost should exceed the alpha-per-delegation
	// floor with room to spare (a random approved delegate is typically much
	// more than alpha better); the floor tightens as alpha grows.
	exceeds := true
	for i := range gaps {
		if gaps[i] < 1.1*promised[i] {
			exceeds = false
		}
	}
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("mu(Y) >= mu(X) + (n-k)*alpha for every configuration", holds,
				"gaps %v promised %v", gaps, promised),
			check("realized sums concentrate above the Lemma 7 bound", tailOK, ""),
			check("actual boost well above the alpha floor", exceeds,
				"gaps %v promised %v", gaps, promised),
		},
	}, nil
}
