package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/power"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runV1 demonstrates the paper's title phenomenon directly: *manipulating
// variance*. On an electorate whose mean competency sits just below 1/2,
// the expected correct-vote fraction stays below 1/2 even after delegation
// — yet delegation wins, because concentrating weight on fewer independent
// sinks inflates the outcome's standard deviation enough to push real
// probability mass across the majority threshold. We tabulate the exact
// mean fraction, the exact normalized standard deviation, and P[correct]
// for a ladder of mechanisms from no delegation to heavy concentration.
func runV1(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(2001, 501)
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.40, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		return nil, err
	}

	type rung struct {
		name string
		mech mechanism.Mechanism
	}
	ladder := []rung{
		{"direct", mechanism.Direct{}},
		{"capped w=4", mechanism.WeightCapped{Inner: mechanism.ApprovalThreshold{Alpha: 0.05}, MaxWeight: 4}},
		{"capped w=16", mechanism.WeightCapped{Inner: mechanism.ApprovalThreshold{Alpha: 0.05}, MaxWeight: 16}},
		{"threshold α=0.05", mechanism.ApprovalThreshold{Alpha: 0.05}},
		{"threshold α=0.02", mechanism.ApprovalThreshold{Alpha: 0.02}},
		{"greedy (max concentration)", mechanism.GreedyBest{Alpha: 0.02}},
	}

	tab := report.NewTable(
		fmt.Sprintf("V1: manipulation of variance on K_n (n=%d, p in [0.40, 0.49], exact moments)", n),
		"mechanism", "E[frac correct]", "sd(frac)", "sinks", "Nakamoto", "P[correct]", "gain")

	var (
		fracMeans []float64
		fracSDs   []float64
		pms       []float64
	)
	for i, r := range ladder {
		d, err := r.mech.Apply(in, root.Derive(uint64(i)+1))
		if err != nil {
			return nil, err
		}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		mean, variance := election.ResolutionMoments(in, res)
		pm, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		w := float64(res.TotalWeight)
		fracMean := mean / w
		fracSD := math.Sqrt(variance) / w

		sinkWeights := make([]int, 0, len(res.Sinks))
		for _, sk := range res.Sinks {
			sinkWeights = append(sinkWeights, res.Weight[sk])
		}
		nakamoto, err := power.FromInts(sinkWeights).Nakamoto()
		if err != nil {
			return nil, err
		}

		fracMeans = append(fracMeans, fracMean)
		fracSDs = append(fracSDs, fracSD)
		pms = append(pms, pm)
		tab.AddRow(r.name, report.F(fracMean), report.F(fracSD),
			report.Itoa(len(res.Sinks)), report.Itoa(nakamoto), report.F(pm), report.F(pm-pd))
	}

	meanStaysBelowHalf := true
	for _, m := range fracMeans {
		if m >= 0.5 {
			meanStaysBelowHalf = false
		}
	}
	// Adjacent rungs with non-binding caps can tie; require monotonicity up
	// to a 10% relative tolerance.
	sdMonotone := true
	for i := 1; i < len(fracSDs); i++ {
		if fracSDs[i] < 0.9*fracSDs[i-1] {
			sdMonotone = false
		}
	}
	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("expected correct fraction stays below 1/2 on every rung", meanStaysBelowHalf,
				"means %v", fracMeans),
			check("standard deviation grows up the concentration ladder", sdMonotone,
				"sds %v", fracSDs),
			check("more variance, more wins: threshold beats capped beats direct",
				pms[3] > pms[1] && pms[1] > pms[0], "P[correct] %v", pms),
			check("delegation wins despite sub-1/2 mean (the variance is the win)",
				pms[3] > pd+0.05, "P^M %v vs P^D %v", pms[3], pd),
		},
	}, nil
}
