package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX1 validates the Section 6 abstention extension: letting delegators
// abstain (with probability q) keeps DNH intact and retains a, typically
// smaller, positive gain.
func runX1(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1001, 301)
	reps := cfg.scaleInt(32, 8)
	root := rng.New(cfg.Seed)
	qs := []float64{0, 0.25, 0.5, 0.75, 1}

	spgIn, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("spg"))
	if err != nil {
		return nil, err
	}
	dnhIn, err := uniformInstance(graph.NewComplete(n), 0.52, 0.80, root.DeriveString("dnh"))
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Extension X1: abstention probability q (Algorithm 1 inner, alpha=0.05)",
		"q", "SPG gain", "SPG 95% CI", "DNH loss", "abstainers (mean)")

	var spgGains, dnhLosses []float64
	for _, q := range qs {
		mech := mechanism.Abstaining{Inner: mechanism.ApprovalThreshold{Alpha: 0.05}, Q: q}
		spg, err := election.EvaluateMechanism(ctx, spgIn, mech, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "X1", fmt.Sprintf("q=%g", q), "spg"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		dnh, err := election.EvaluateMechanism(ctx, dnhIn, mech, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "X1", fmt.Sprintf("q=%g", q), "dnh"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		spgGains = append(spgGains, spg.Gain)
		dnhLosses = append(dnhLosses, -dnh.Gain)
		// MeanDelegators counts delegation decisions incl. abstainers;
		// abstainer count is derivable from total weight: reported via
		// MeanSinks bookkeeping here by approximation q * delegators.
		tab.AddRow(report.F2(q), report.F(spg.Gain), report.Interval(spg.GainLo, spg.GainHi),
			report.F(-dnh.Gain), report.F2(q*spg.MeanDelegators))
	}

	worstLoss := maxAbs(dnhLosses)
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("no-abstention gain is positive", spgGains[0] > 0, "gain %v", spgGains[0]),
			check("moderate abstention keeps positive gain", spgGains[1] > 0 && spgGains[2] > 0,
				"gains %v", spgGains),
			check("DNH preserved for all q", worstLoss < 0.05, "losses %v", dnhLosses),
		},
	}, nil
}

// runX2 validates the Section 6 weighted-majority (multi-delegate)
// extension: consulting k approved delegates should do at least as well as
// consulting one.
func runX2(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(501, 201)
	reps := cfg.scaleInt(16, 6)
	votes := cfg.scaleInt(4000, 1500)
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Extension X2: multi-delegate weighted majority (alpha=0.05)",
		"k", "P^M", "gain", "gain 95% CI", "delegators")
	ks := []int{1, 3, 5, 9}
	gains := make([]float64, 0, len(ks))
	for _, k := range ks {
		res, err := election.EvaluateMultiMechanism(ctx, in, mechanism.MultiDelegate{Alpha: 0.05, K: k},
			election.Options{Replications: reps, VoteSamples: votes, Seed: rng.Derive(cfg.Seed, "X2", fmt.Sprintf("k=%d", k)), Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		gains = append(gains, res.Gain)
		tab.AddRow(report.Itoa(k), report.F(res.PM), report.F(res.Gain),
			report.Interval(res.GainLo, res.GainHi), report.F2(res.MeanDelegators))
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("single delegate already gains", gains[0] > 0, "gain %v", gains[0]),
			check("k=3 at least matches k=1 (within noise)", gains[1] >= gains[0]-0.02,
				"gains %v", gains),
			check("all k gain", minFloat(gains) > 0, "gains %v", gains),
		},
	}, nil
}

// runX3 audits the Lemma 5 condition on real-world-like networks
// (Section 6 future work): Barabasi-Albert and community graphs.
func runX3(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(2000, 500)
	reps := cfg.scaleInt(16, 6)
	root := rng.New(cfg.Seed)

	type netDef struct {
		name  string
		build func(s *rng.Stream) (graph.Topology, error)
	}
	nets := []netDef{
		{"BA m=2", func(s *rng.Stream) (graph.Topology, error) { return graph.BarabasiAlbert(n, 2, s) }},
		{"BA m=8", func(s *rng.Stream) (graph.Topology, error) { return graph.BarabasiAlbert(n, 8, s) }},
		{"community k=10", func(s *rng.Stream) (graph.Topology, error) {
			return graph.Community(n, 10, math.Min(1, 40/float64(n)*10), 2/float64(n), s)
		}},
		{"ER dense", func(s *rng.Stream) (graph.Topology, error) {
			return graph.ErdosRenyi(n, 20/float64(n), s)
		}},
	}

	tab := report.NewTable("Extension X3: Lemma-5 audit on network models (threshold mechanism, alpha=0.05)",
		"network", "max degree", "mean max w", "max w", "w/n", "SPG gain", "DNH loss")

	type rowOut struct {
		name     string
		maxWNorm float64
		gain     float64
		loss     float64
	}
	rows := make([]rowOut, 0, len(nets))
	for i, nd := range nets {
		top, err := nd.build(root.Derive(uint64(i) + 1))
		if err != nil {
			return nil, err
		}
		mech := mechanism.ApprovalThreshold{Alpha: 0.05}
		spgIn, err := uniformInstance(top, 0.30, 0.49, root.Derive(uint64(i)*10+2))
		if err != nil {
			return nil, err
		}
		spg, err := election.EvaluateMechanism(ctx, spgIn, mech, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "X3", nd.name, "spg"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		dnhIn, err := uniformInstance(top, 0.52, 0.80, root.Derive(uint64(i)*10+3))
		if err != nil {
			return nil, err
		}
		dnh, err := election.EvaluateMechanism(ctx, dnhIn, mech, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "X3", nd.name, "dnh"), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		deg := graph.Degrees(top)
		wNorm := float64(spg.MaxMaxWeight) / float64(n)
		rows = append(rows, rowOut{name: nd.name, maxWNorm: wNorm, gain: spg.Gain, loss: -dnh.Gain})
		tab.AddRow(nd.name, report.Itoa(deg.Max), report.F2(spg.MeanMaxWeight),
			report.Itoa(spg.MaxMaxWeight), report.F(wNorm), report.F(spg.Gain), report.F(-dnh.Gain))
	}

	// The qualitative claim: networks whose max sink weight stays a small
	// fraction of n keep losses small; every audited model should satisfy
	// w << n (no dictator emerges from the threshold mechanism).
	worstNorm, worstLoss := 0.0, 0.0
	for _, r := range rows {
		if r.maxWNorm > worstNorm {
			worstNorm = r.maxWNorm
		}
		if r.loss > worstLoss {
			worstLoss = r.loss
		}
	}
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("max sink weight stays well below n", worstNorm < 0.5, "worst w/n %v", worstNorm),
			check("losses stay small on all models", worstLoss < 0.08, "worst loss %v", worstLoss),
		},
	}, nil
}
