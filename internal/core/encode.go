package core

import (
	"encoding/json"
	"fmt"
	"io"

	"liquid/internal/graph"
)

// instanceJSON is the on-disk representation of a problem instance.
type instanceJSON struct {
	N        int       `json:"n"`
	Complete bool      `json:"complete,omitempty"`
	Edges    [][2]int  `json:"edges,omitempty"`
	P        []float64 `json:"p"`
}

// WriteInstance serializes the instance as JSON. Complete topologies are
// stored as a flag instead of n^2 edges.
func WriteInstance(w io.Writer, in *Instance) error {
	spec := instanceJSON{
		N: in.N(),
		P: in.Competencies(),
	}
	if _, ok := in.Topology().(graph.Complete); ok {
		spec.Complete = true
	} else {
		for v := 0; v < in.N(); v++ {
			for _, u := range in.Topology().Neighbors(v) {
				if v < u {
					spec.Edges = append(spec.Edges, [2]int{v, u})
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(spec)
}

// ReadInstance parses an instance written by WriteInstance.
func ReadInstance(r io.Reader) (*Instance, error) {
	var spec instanceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("%w: negative n %d", ErrInvalidInstance, spec.N)
	}
	var top graph.Topology
	if spec.Complete {
		if len(spec.Edges) > 0 {
			return nil, fmt.Errorf("%w: complete flag with explicit edges", ErrInvalidInstance)
		}
		top = graph.NewComplete(spec.N)
	} else {
		g, err := graph.NewGraphFromEdges(spec.N, spec.Edges)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
		}
		top = g
	}
	return NewInstance(top, spec.P)
}
