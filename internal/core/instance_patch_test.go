package core

import (
	"math"
	"math/rand"
	"testing"

	"liquid/internal/graph"
)

// TestWithCompetencyMatchesNewInstance is the property WithCompetency
// promises: the patched instance's derived tables are exactly what
// NewInstance builds for the patched vector, including the (bits, id)
// tie-break. The coarse competency grid forces ties.
func TestWithCompetencyMatchesNewInstance(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(30)
		p := make([]float64, n)
		for i := range p {
			p[i] = float64(r.Intn(8)) / 8
		}
		in, err := NewInstance(graph.NewComplete(n), p)
		if err != nil {
			t.Fatal(err)
		}
		v := r.Intn(n)
		np := float64(r.Intn(9)) / 9
		got, err := in.WithCompetency(v, np)
		if err != nil {
			t.Fatal(err)
		}
		p2 := append([]float64(nil), p...)
		p2[v] = np
		want, err := NewInstance(graph.NewComplete(n), p2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got.byCompetency[i] != want.byCompetency[i] ||
				math.Float64bits(got.sortedP[i]) != math.Float64bits(want.sortedP[i]) ||
				math.Float64bits(got.p[i]) != math.Float64bits(want.p[i]) {
				t.Fatalf("trial %d n=%d v=%d old=%v new=%v:\n got bc=%v sp=%v\nwant bc=%v sp=%v",
					trial, n, v, p[v], np, got.byCompetency, got.sortedP, want.byCompetency, want.sortedP)
			}
		}
		// The receiver must be untouched.
		for i := 0; i < n; i++ {
			if math.Float64bits(in.p[i]) != math.Float64bits(p[i]) {
				t.Fatalf("trial %d: WithCompetency mutated the receiver", trial)
			}
		}
	}
}

func TestWithCompetencyErrors(t *testing.T) {
	in, err := NewInstance(graph.NewComplete(3), []float64{0.5, 0.6, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.WithCompetency(3, 0.5); err == nil {
		t.Fatal("out-of-range voter accepted")
	}
	if _, err := in.WithCompetency(-1, 0.5); err == nil {
		t.Fatal("negative voter accepted")
	}
	if _, err := in.WithCompetency(0, 1.5); err == nil {
		t.Fatal("p > 1 accepted")
	}
	if _, err := in.WithCompetency(0, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	// Same-bits patch shares the sorted tables.
	out, err := in.WithCompetency(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if &out.byCompetency[0] != &in.byCompetency[0] {
		t.Fatal("same-bits patch should share the competency order")
	}
}
