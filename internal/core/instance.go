// Package core implements the paper's voting model (Section 2): problem
// instances G = (V, E, p), approval sets J(i) with margin alpha, graph
// restrictions, delegation graphs with sink/weight resolution, and the
// gain/loss bookkeeping shared by every mechanism and experiment.
package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"liquid/internal/graph"
	"liquid/internal/rng"
)

// Model errors. They wrap with %w so callers can match with errors.Is.
var (
	// ErrInvalidInstance reports malformed instance construction input.
	ErrInvalidInstance = errors.New("core: invalid instance")
	// ErrCyclicDelegation reports a delegation graph containing a cycle,
	// which only an invalid (non-approval-based) mechanism can produce.
	ErrCyclicDelegation = errors.New("core: cyclic delegation")
	// ErrInvalidDelegation reports a structurally invalid delegation edge.
	ErrInvalidDelegation = errors.New("core: invalid delegation")
)

// Instance is a problem instance G = (V, E, p): a topology on n voters and a
// competency vector p where p[i] is voter i's probability of voting for the
// correct outcome.
type Instance struct {
	top graph.Topology
	p   []float64

	// byCompetency holds voter ids sorted ascending by competency; used for
	// O(log n) approval queries on complete topologies.
	byCompetency []int
	sortedP      []float64

	// approvalMemo caches, per alpha, each voter's suffix start in sortedP
	// (the index of the first competency >= p_i + alpha). Mechanisms query
	// approval sets for every voter every replication at a fixed alpha, so
	// the O(n) table build amortizes to O(1) lookups. Purely an
	// index-computation cache: a memoized start is the same value
	// sort.SearchFloat64s would return, so results never depend on it.
	// The latest table is published through an atomic pointer so the
	// hot path (same alpha as last time) is one load and a compare.
	approvalMemo struct {
		latest atomic.Pointer[approvalTable]
		mu     sync.Mutex
		m      map[float64][]int
	}
}

// approvalTable is one memoized suffix-start table for a fixed alpha.
type approvalTable struct {
	alpha float64
	lo    []int
}

// approvalMemoMaxEntries bounds the per-instance alpha table count; sweeps
// use a handful of alphas, so the bound only guards pathological callers.
const approvalMemoMaxEntries = 64

// approvalSuffixStarts returns the memoized per-voter suffix starts for
// alpha, building the table on first use.
func (in *Instance) approvalSuffixStarts(alpha float64) []int {
	if t := in.approvalMemo.latest.Load(); t != nil && t.alpha == alpha {
		return t.lo
	}
	in.approvalMemo.mu.Lock()
	lo, ok := in.approvalMemo.m[alpha]
	if !ok {
		// lo[i] = first index with sortedP >= p_i + alpha. Visiting voters in
		// ascending competency order makes the threshold nondecreasing, so a
		// single two-pointer sweep replaces a binary search per voter; the
		// comparisons are the identical float comparisons SearchFloat64s
		// would perform, so the results match it exactly.
		n := len(in.p)
		lo = make([]int, n)
		cut := 0
		for _, id := range in.byCompetency {
			t := in.p[id] + alpha
			for cut < n && in.sortedP[cut] < t {
				cut++
			}
			lo[id] = cut
		}
		if in.approvalMemo.m == nil {
			in.approvalMemo.m = make(map[float64][]int)
		}
		if len(in.approvalMemo.m) >= approvalMemoMaxEntries {
			in.approvalMemo.m = make(map[float64][]int)
		}
		in.approvalMemo.m[alpha] = lo
	}
	in.approvalMemo.latest.Store(&approvalTable{alpha: alpha, lo: lo})
	in.approvalMemo.mu.Unlock()
	return lo
}

// NewInstance validates the competency vector against the topology and
// returns the instance. Each p must lie in [0, 1].
func NewInstance(top graph.Topology, p []float64) (*Instance, error) {
	if top == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrInvalidInstance)
	}
	if len(p) != top.N() {
		return nil, fmt.Errorf("%w: %d competencies for %d voters", ErrInvalidInstance, len(p), top.N())
	}
	for i, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: p[%d] = %v not in [0,1]", ErrInvalidInstance, i, v)
		}
	}
	in := &Instance{
		top: top,
		p:   append([]float64(nil), p...),
	}
	// Ascending by (competency, id). The Float64bits image preserves float
	// order for the non-negative, non-NaN competencies NewInstance just
	// validated, so the keys sort through the specialized ordered-type path
	// (no comparator calls). Ids are recovered afterwards: visiting voters
	// in ascending id order and appending each to its key's run reproduces
	// the ascending-id tiebreak a stable sort by competency would give.
	// Instance construction sits on every experiment's setup path, so this
	// is a measured hot spot.
	n := len(p)
	ks := make([]uint64, n)
	for i, v := range p {
		ks[i] = math.Float64bits(v)
	}
	slices.Sort(ks)
	in.byCompetency = make([]int, n)
	in.sortedP = make([]float64, n)
	for i, b := range ks {
		in.sortedP[i] = math.Float64frombits(b)
	}
	fill := make([]int32, n) // fill[r] = ids already placed in the run at r
	for i, v := range p {
		b := math.Float64bits(v)
		// First index of b's run in ks (manual search: the closure-free loop
		// matters at this call rate).
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ks[mid] < b {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		in.byCompetency[lo+int(fill[lo])] = i
		fill[lo]++
	}
	return in, nil
}

// WithCompetency returns a new instance equal to in except that voter v's
// competency is p — the same instance NewInstance(in.Topology(), patched)
// would build, including the (competency-bits, id) order of the derived
// tables, but in O(n) straight-line work instead of a full sort. The
// incremental-evaluation path (election.Plan.ApplyDelta) patches thousands
// of instances per churn sequence, where the construction sort would
// dominate the delta evaluation itself. The receiver is not modified; the
// derived instance shares the topology and, when the competency bits are
// unchanged, the sorted tables (both immutable after construction).
func (in *Instance) WithCompetency(v int, p float64) (*Instance, error) {
	n := len(in.p)
	if v < 0 || v >= n {
		return nil, fmt.Errorf("%w: voter %d out of range [0,%d)", ErrInvalidInstance, v, n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("%w: p[%d] = %v not in [0,1]", ErrInvalidInstance, v, p)
	}
	out := &Instance{top: in.top, p: append([]float64(nil), in.p...)}
	oldBits := math.Float64bits(out.p[v])
	newBits := math.Float64bits(p)
	out.p[v] = p
	if oldBits == newBits {
		out.byCompetency = in.byCompetency
		out.sortedP = in.sortedP
		return out, nil
	}
	// Rebuild the sorted tables by deleting v's old entry and re-inserting
	// at its new rank. Entries are ordered by (Float64bits(p), id) — the
	// exact order NewInstance produces — so the old entry is the slot inside
	// the old-bits run carrying id v, and the new entry precedes the first
	// slot whose (bits, id) exceeds (newBits, v).
	oldIdx := 0
	for in.byCompetency[oldIdx] != v {
		oldIdx++
	}
	out.byCompetency = make([]int, n)
	out.sortedP = make([]float64, n)
	k := 0
	inserted := false
	for i := 0; i < n; i++ {
		if i == oldIdx {
			continue
		}
		b := math.Float64bits(in.sortedP[i])
		id := in.byCompetency[i]
		if !inserted && (b > newBits || (b == newBits && id > v)) {
			out.sortedP[k] = p
			out.byCompetency[k] = v
			k++
			inserted = true
		}
		out.sortedP[k] = in.sortedP[i]
		out.byCompetency[k] = id
		k++
	}
	if !inserted {
		out.sortedP[k] = p
		out.byCompetency[k] = v
	}
	return out, nil
}

// N returns the number of voters.
func (in *Instance) N() int { return len(in.p) }

// Topology returns the underlying voting graph.
func (in *Instance) Topology() graph.Topology { return in.top }

// Competency returns p[i].
func (in *Instance) Competency(i int) float64 { return in.p[i] }

// CompetencyOrder returns voter ids sorted ascending by competency (ties
// by id, fixed at construction). The slice is shared with the instance and
// must not be modified; it lets hot paths obtain p-sorted voter sequences
// in O(n) instead of re-sorting per call.
func (in *Instance) CompetencyOrder() []int { return in.byCompetency }

// Competencies returns a copy of the competency vector.
func (in *Instance) Competencies() []float64 {
	return append([]float64(nil), in.p...)
}

// MeanCompetency returns (1/n) * sum p_i.
func (in *Instance) MeanCompetency() float64 {
	if len(in.p) == 0 {
		return 0
	}
	var s float64
	for _, v := range in.p {
		s += v
	}
	return s / float64(len(in.p))
}

// Approves reports whether voter i approves voter j at margin alpha:
// p_j >= p_i + alpha, with j a neighbor of i and j != i.
func (in *Instance) Approves(i, j int, alpha float64) bool {
	if i == j || !in.top.HasEdge(i, j) {
		return false
	}
	return in.p[j] >= in.p[i]+alpha
}

// ApprovalSet returns J(i), the neighbors of i that i approves at margin
// alpha, in ascending vertex order.
func (in *Instance) ApprovalSet(i int, alpha float64) []int {
	var out []int
	threshold := in.p[i] + alpha
	for _, j := range in.top.Neighbors(i) {
		if in.p[j] >= threshold {
			out = append(out, j)
		}
	}
	return out
}

// ApprovalCount returns |J(i)| without materializing the set. On complete
// topologies it answers in O(log n) using the competency order.
func (in *Instance) ApprovalCount(i int, alpha float64) int {
	if _, ok := in.top.(graph.Complete); ok {
		return in.completeApprovalCount(i, alpha)
	}
	threshold := in.p[i] + alpha
	count := 0
	for _, j := range in.top.Neighbors(i) {
		if in.p[j] >= threshold {
			count++
		}
	}
	return count
}

func (in *Instance) completeApprovalCount(i int, alpha float64) int {
	threshold := in.p[i] + alpha
	lo := in.approvalSuffixStarts(alpha)[i]
	count := len(in.sortedP) - lo
	if alpha <= 0 && in.p[i] >= threshold {
		count-- // exclude self, which the suffix includes when alpha <= 0
	}
	return count
}

// SampleApproved draws a uniformly random member of J(i), reporting ok =
// false when the approval set is empty. On complete topologies the draw is
// O(log n); otherwise it scans the neighborhood once (reservoir style, no
// allocation).
func (in *Instance) SampleApproved(i int, alpha float64, s *rng.Stream) (delegate int, ok bool) {
	if _, isComplete := in.top.(graph.Complete); isComplete {
		return in.completeSampleApproved(i, alpha, s)
	}
	threshold := in.p[i] + alpha
	count := 0
	pick := -1
	for _, j := range in.top.Neighbors(i) {
		if in.p[j] < threshold {
			continue
		}
		count++
		if s.IntN(count) == 0 {
			pick = j
		}
	}
	if count == 0 {
		return -1, false
	}
	return pick, true
}

func (in *Instance) completeSampleApproved(i int, alpha float64, s *rng.Stream) (int, bool) {
	return in.sampleApprovedAt(i, alpha, in.approvalSuffixStarts(alpha)[i], s)
}

// sampleApprovedAt is completeSampleApproved with the suffix start already
// resolved (by the per-voter memo or an ApprovalView).
func (in *Instance) sampleApprovedAt(i int, alpha float64, lo int, s *rng.Stream) (int, bool) {
	threshold := in.p[i] + alpha
	n := len(in.sortedP)
	if lo >= n {
		return -1, false
	}
	selfInSuffix := alpha <= 0 && in.p[i] >= threshold
	size := n - lo
	if selfInSuffix {
		size--
	}
	if size <= 0 {
		return -1, false
	}
	for {
		j := in.byCompetency[lo+s.IntN(n-lo)]
		if j != i {
			return j, true
		}
	}
}

// ApprovalView is a prefetched approval-query handle at a fixed alpha.
// Mechanisms that query every voter per replication construct one view per
// Apply and skip the per-query memo lookup; answers are identical to
// ApprovalCount / SampleApproved, including the random draw sequence.
type ApprovalView struct {
	in    *Instance
	alpha float64
	lo    []int // suffix starts on complete topologies, nil otherwise
}

// ApprovalView returns the approval view of the instance at margin alpha.
func (in *Instance) ApprovalView(alpha float64) ApprovalView {
	v := ApprovalView{in: in, alpha: alpha}
	if _, ok := in.top.(graph.Complete); ok {
		v.lo = in.approvalSuffixStarts(alpha)
	}
	return v
}

// Count returns |J(i)|; see Instance.ApprovalCount.
func (v ApprovalView) Count(i int) int {
	if v.lo == nil {
		return v.in.ApprovalCount(i, v.alpha)
	}
	in := v.in
	threshold := in.p[i] + v.alpha
	count := len(in.sortedP) - v.lo[i]
	if v.alpha <= 0 && in.p[i] >= threshold {
		count-- // exclude self, which the suffix includes when alpha <= 0
	}
	return count
}

// Sample draws a uniformly random member of J(i); see
// Instance.SampleApproved.
func (v ApprovalView) Sample(i int, s *rng.Stream) (int, bool) {
	if v.lo == nil {
		return v.in.SampleApproved(i, v.alpha, s)
	}
	return v.in.sampleApprovedAt(i, v.alpha, v.lo[i], s)
}

// TopByCompetency returns the voter ids of the k most competent voters,
// most competent first. k is clamped to [0, n].
func (in *Instance) TopByCompetency(k int) []int {
	n := len(in.byCompetency)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, in.byCompetency[n-1-i])
	}
	return out
}
