package core

import (
	"bytes"
	"strings"
	"testing"

	"liquid/internal/graph"
)

func TestWriteDOT(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.9, 0.5, 0.3})
	d := NewDelegationGraph(3)
	if err := d.SetDelegate(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDelegate(2, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, in, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph delegation {",
		"doublecircle",
		`xlabel="w=3"`,
		"v1 -> v0;",
		"v2 -> v0;",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTAbstainer(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(2), []float64{0.9, 0.3})
	d := NewDelegationGraph(2)
	if err := d.SetDelegate(1, 0); err != nil {
		t.Fatal(err)
	}
	d.SetAbstained(1)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, in, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "style=dashed") {
		t.Fatal("abstainer should be dashed")
	}
}

func TestWriteDOTSizeMismatch(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(2), []float64{0.5, 0.5})
	d := NewDelegationGraph(3)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, in, d); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestWriteDOTCyclicRejected(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(2), []float64{0.5, 0.5})
	d := NewDelegationGraph(2)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDelegate(1, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, in, d); err == nil {
		t.Fatal("cycle accepted")
	}
}
