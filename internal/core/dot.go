package core

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders a delegation graph in Graphviz DOT format for
// visualization: sinks are drawn as double circles labeled with their
// accumulated weight, delegators as plain circles, and abstainers dashed.
// Node labels carry the voter id and competency.
func WriteDOT(w io.Writer, in *Instance, d *DelegationGraph) error {
	if d.N() != in.N() {
		return fmt.Errorf("%w: delegation graph size %d vs instance %d", ErrInvalidDelegation, d.N(), in.N())
	}
	res, err := d.Resolve()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph delegation {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [fontsize=10];")
	for v := 0; v < in.N(); v++ {
		attrs := fmt.Sprintf(`label="v%d\np=%.3f"`, v+1, in.Competency(v))
		switch {
		case d.Abstained != nil && d.Abstained[v]:
			attrs += ` shape=circle style=dashed`
		case res.SinkOf[v] == v:
			attrs += fmt.Sprintf(` shape=doublecircle xlabel="w=%d"`, res.Weight[v])
		default:
			attrs += ` shape=circle`
		}
		fmt.Fprintf(bw, "  v%d [%s];\n", v, attrs)
	}
	for v, j := range d.Delegate {
		if j == NoDelegate {
			continue
		}
		style := ""
		if d.Abstained != nil && d.Abstained[v] {
			style = " [style=dashed]"
		}
		fmt.Fprintf(bw, "  v%d -> v%d%s;\n", v, j, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
