package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"liquid/internal/graph"
)

func TestInstanceRoundTripExplicit(t *testing.T) {
	g, err := graph.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.9, 0.1, 0.2, 0.3, 0.4}
	in := mustInstance(t, g, p)

	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 5 {
		t.Fatalf("N = %d", back.N())
	}
	for i, want := range p {
		if back.Competency(i) != want {
			t.Fatalf("p[%d] = %v, want %v", i, back.Competency(i), want)
		}
	}
	for v := 1; v < 5; v++ {
		if !back.Topology().HasEdge(0, v) {
			t.Fatalf("missing edge (0,%d)", v)
		}
	}
	if back.Topology().HasEdge(1, 2) {
		t.Fatal("phantom edge")
	}
}

func TestInstanceRoundTripComplete(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), []float64{0.1, 0.2, 0.3, 0.4})
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Complete topologies serialize compactly (no edge list).
	if strings.Contains(buf.String(), "edges") {
		t.Fatalf("complete instance should not store edges: %s", buf.String())
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Topology().(graph.Complete); !ok {
		t.Fatal("complete flag lost in round trip")
	}
}

func TestReadInstanceErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"garbage", "not json"},
		{"negative n", `{"n": -1, "p": []}`},
		{"complete with edges", `{"n": 3, "complete": true, "edges": [[0,1]], "p": [0.5,0.5,0.5]}`},
		{"bad edge", `{"n": 2, "edges": [[0,5]], "p": [0.5,0.5]}`},
		{"p length mismatch", `{"n": 3, "complete": true, "p": [0.5]}`},
		{"p out of range", `{"n": 1, "complete": true, "p": [1.5]}`},
	}
	for _, tt := range tests {
		if _, err := ReadInstance(strings.NewReader(tt.in)); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("%s: err = %v", tt.name, err)
		}
	}
}
