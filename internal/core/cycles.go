package core

import (
	"fmt"
)

// CyclePolicy selects how Resolve treats delegation cycles, which can arise
// in deployed systems that do not enforce the paper's alpha > 0 margin
// (e.g. mutual delegation pacts in LiquidFeedback-style platforms).
type CyclePolicy int

const (
	// CycleError rejects cyclic graphs (the default Resolve behaviour,
	// matching the paper's acyclicity guarantee).
	CycleError CyclePolicy = iota + 1
	// CycleAbstain discards the votes of all voters whose chain ends in a
	// cycle (LiquidFeedback semantics: a delegation loop casts no ballot).
	CycleAbstain
	// CycleDirect makes every voter inside a cycle vote directly, keeping
	// chains that lead into the cycle attached to those voters.
	CycleDirect
)

// ResolveWithPolicy resolves the delegation graph under the given cycle
// policy (unit initial weights). With CycleError it is identical to
// Resolve.
func (d *DelegationGraph) ResolveWithPolicy(policy CyclePolicy) (*Resolution, error) {
	switch policy {
	case 0, CycleError:
		return d.Resolve()
	case CycleAbstain, CycleDirect:
	default:
		return nil, fmt.Errorf("%w: unknown cycle policy %d", ErrInvalidDelegation, policy)
	}

	cycleMember := d.cycleMembers()
	any := false
	for _, c := range cycleMember {
		if c {
			any = true
			break
		}
	}
	if !any {
		return d.Resolve()
	}

	// Build a sanitized copy in which cycle members vote directly, then
	// resolve it; this is already the CycleDirect answer.
	fixed := &DelegationGraph{
		Delegate: append([]int(nil), d.Delegate...),
	}
	if d.Abstained != nil {
		fixed.Abstained = append([]bool(nil), d.Abstained...)
	}
	for v, inCycle := range cycleMember {
		if !inCycle {
			continue
		}
		fixed.Delegate[v] = NoDelegate
		if fixed.Abstained != nil {
			fixed.Abstained[v] = false
		}
	}
	res, err := fixed.Resolve()
	if err != nil {
		return nil, err
	}
	if policy == CycleAbstain {
		// LiquidFeedback semantics: every vote whose chain drains into a
		// cycle is discarded — the cycle members' own votes and everything
		// delegated into them.
		for v := range res.SinkOf {
			sk := res.SinkOf[v]
			if sk == NoDelegate || !cycleMember[sk] {
				continue
			}
			res.SinkOf[v] = NoDelegate
			res.TotalWeight--
			if v != sk {
				// v delegated into the cycle; it still counts as a
				// delegator either way, nothing else to adjust.
				continue
			}
		}
		res.Sinks = res.Sinks[:0]
		res.MaxWeight = 0
		for v := range res.Weight {
			if cycleMember[v] {
				res.Weight[v] = 0
				continue
			}
			if res.SinkOf[v] == v {
				res.Sinks = append(res.Sinks, v)
				if res.Weight[v] > res.MaxWeight {
					res.MaxWeight = res.Weight[v]
				}
			}
		}
	}
	return res, nil
}

// cycleMembers returns, for each voter, whether it lies ON a delegation
// cycle (not merely upstream of one). Since out-degree is at most 1, every
// cycle is reachable by walking forward; a vertex is a cycle member iff
// walking from it returns to it.
func (d *DelegationGraph) cycleMembers() []bool {
	n := len(d.Delegate)
	member := make([]bool, n)
	state := make([]int8, n) // 0 unknown, 1 on current walk, 2 done
	walk := make([]int, 0, 64)
	for start := 0; start < n; start++ {
		if state[start] != 0 {
			continue
		}
		walk = walk[:0]
		v := start
		for v != NoDelegate && state[v] == 0 {
			state[v] = 1
			walk = append(walk, v)
			v = d.Delegate[v]
		}
		if v != NoDelegate && state[v] == 1 {
			// Found a new cycle: everything on the walk from v onward is a
			// member.
			inCycle := false
			for _, u := range walk {
				if u == v {
					inCycle = true
				}
				if inCycle {
					member[u] = true
				}
			}
		}
		for _, u := range walk {
			state[u] = 2
		}
	}
	return member
}
