package core

import (
	"fmt"
)

// NoDelegate marks a voter that votes directly in a DelegationGraph.
const NoDelegate = -1

// DelegationGraph is one realized output of a delegation mechanism: each
// voter either delegates to exactly one other voter or votes directly.
// Voters may additionally abstain (Section 6 extension); the model only
// permits abstention for voters that could delegate, and an abstaining
// voter contributes no weight anywhere.
type DelegationGraph struct {
	// Delegate[i] is the voter i delegates to, or NoDelegate.
	Delegate []int
	// Abstained[i] reports whether voter i abstained. Nil means nobody
	// abstained.
	Abstained []bool
}

// NewDelegationGraph returns a delegation graph on n voters in which every
// voter votes directly.
func NewDelegationGraph(n int) *DelegationGraph {
	d := &DelegationGraph{Delegate: make([]int, n)}
	for i := range d.Delegate {
		d.Delegate[i] = NoDelegate
	}
	return d
}

// N returns the number of voters.
func (d *DelegationGraph) N() int { return len(d.Delegate) }

// SetDelegate records that voter i delegates to voter j. It returns an
// error if either index is out of range or i == j (self-delegation is
// represented as NoDelegate).
func (d *DelegationGraph) SetDelegate(i, j int) error {
	n := len(d.Delegate)
	if i < 0 || i >= n || j < 0 || j >= n {
		return fmt.Errorf("%w: edge (%d,%d) out of range [0,%d)", ErrInvalidDelegation, i, j, n)
	}
	if i == j {
		return fmt.Errorf("%w: self-delegation at voter %d", ErrInvalidDelegation, i)
	}
	d.Delegate[i] = j
	return nil
}

// SetAbstained marks voter i as abstaining. Abstention is only valid for
// voters that delegate (checked at Resolve time).
func (d *DelegationGraph) SetAbstained(i int) {
	if d.Abstained == nil {
		d.Abstained = make([]bool, len(d.Delegate))
	}
	d.Abstained[i] = true
}

// NumDelegators counts voters with a delegation edge (including abstainers,
// who by definition could have delegated).
func (d *DelegationGraph) NumDelegators() int {
	count := 0
	for i, j := range d.Delegate {
		if j != NoDelegate {
			count++
		} else if d.abstained(i) {
			count++
		}
	}
	return count
}

func (d *DelegationGraph) abstained(i int) bool {
	return d.Abstained != nil && d.Abstained[i]
}

// Resolution is the outcome of following every delegation chain to its
// sink.
type Resolution struct {
	// SinkOf[i] is the sink voter whose vote represents voter i, or
	// NoDelegate if voter i abstained.
	SinkOf []int
	// Sinks lists the distinct sinks in ascending order.
	Sinks []int
	// Weight[s] is the number of votes sink s casts (including its own);
	// zero for non-sinks.
	Weight []int
	// MaxWeight is the largest sink weight (the Lemma 5 quantity).
	MaxWeight int
	// TotalWeight is the number of non-abstaining voters.
	TotalWeight int
	// LongestChain is the maximum number of delegation hops from any voter
	// to its sink (0 when everybody votes directly).
	LongestChain int
	// Delegators is the number of voters that delegated or abstained.
	Delegators int
}

// Resolve follows all delegation chains, verifying acyclicity. Mechanisms
// that delegate only into approval sets with alpha > 0 always produce
// acyclic graphs (the paper's observation in Section 2.2); Resolve rejects
// anything else with ErrCyclicDelegation.
func (d *DelegationGraph) Resolve() (*Resolution, error) {
	return d.ResolveWithWeights(nil)
}

// ResolveWithWeights resolves the delegation graph with non-uniform initial
// voting power (e.g. token balances in DAO governance): voter i contributes
// initial[i] votes to its sink. A nil slice means one vote per voter
// (the paper's model). Initial weights must be non-negative.
func (d *DelegationGraph) ResolveWithWeights(initial []int) (*Resolution, error) {
	return new(Resolver).ResolveWithWeights(d, initial)
}

// Resolver resolves delegation graphs into reusable scratch, so hot loops
// (one resolution per replication) stop paying the six per-call allocations
// of DelegationGraph.Resolve. The returned Resolution aliases the
// Resolver's buffers: it is valid only until the next call on the same
// Resolver, and a Resolver must not be shared between goroutines.
// Resolution values are identical to DelegationGraph.Resolve's.
type Resolver struct {
	res   Resolution
	depth []int
	sink  []int
	stack []int
	// dirty marks Weight as holding partial writes from an errored call;
	// clean calls zero only their own sinks' entries on the next resolve.
	dirty bool
}

// Resolve is ResolveWithWeights with one vote per voter.
func (r *Resolver) Resolve(d *DelegationGraph) (*Resolution, error) {
	return r.ResolveWithWeights(d, nil)
}

// ResolveWithWeights resolves d into the Resolver's scratch. See
// DelegationGraph.ResolveWithWeights for semantics.
func (r *Resolver) ResolveWithWeights(d *DelegationGraph, initial []int) (*Resolution, error) {
	n := len(d.Delegate)
	if initial != nil {
		if len(initial) != n {
			return nil, fmt.Errorf("%w: %d initial weights for %d voters", ErrInvalidDelegation, len(initial), n)
		}
		for i, w := range initial {
			if w < 0 {
				return nil, fmt.Errorf("%w: negative initial weight %d for voter %d", ErrInvalidDelegation, w, i)
			}
		}
	}
	res := &r.res
	if cap(res.SinkOf) < n {
		res.SinkOf = make([]int, n)
		res.Weight = make([]int, n) // fresh, so already zero
		r.depth = make([]int, n)
		r.sink = make([]int, n)
		r.dirty = false
		res.Sinks = res.Sinks[:0]
	}
	res.SinkOf = res.SinkOf[:n]
	// After a clean resolve the only nonzero Weight entries are that call's
	// sinks, so zero those instead of the whole vector; an errored call
	// leaves r.dirty set and forces the full wipe. Zeroing runs over the
	// full capacity because the previous call may have covered more voters.
	wfull := res.Weight[:cap(res.Weight)]
	if r.dirty {
		for i := range wfull {
			wfull[i] = 0
		}
	} else {
		for _, v := range res.Sinks {
			wfull[v] = 0
		}
	}
	r.dirty = true
	res.Weight = res.Weight[:n]
	res.Sinks = res.Sinks[:0]
	res.MaxWeight = 0
	res.TotalWeight = 0
	res.LongestChain = 0
	res.Delegators = 0
	// depth[i]: number of hops from i to its sink; -1 unknown, -2 on stack.
	const (
		unknown = -1
		onStack = -2
	)
	depth := r.depth[:n]
	sink := r.sink[:n]
	for i := range depth {
		depth[i] = unknown
	}

	stack := r.stack
	for start := 0; start < n; start++ {
		if depth[start] != unknown {
			continue
		}
		v := start
		stack = stack[:0]
		for depth[v] == unknown {
			if j := d.Delegate[v]; j == NoDelegate {
				depth[v] = 0
				sink[v] = v
			} else {
				depth[v] = onStack
				stack = append(stack, v)
				v = j
				if depth[v] == onStack {
					return nil, fmt.Errorf("%w: cycle through voter %d", ErrCyclicDelegation, v)
				}
			}
		}
		// depth[v] is now resolved; unwind the stack.
		for k := len(stack) - 1; k >= 0; k-- {
			u := stack[k]
			next := d.Delegate[u]
			depth[u] = depth[next] + 1
			sink[u] = sink[next]
		}
	}
	r.stack = stack // keep any growth for the next call

	for i := 0; i < n; i++ {
		if d.abstained(i) {
			if d.Delegate[i] == NoDelegate {
				return nil, fmt.Errorf("%w: voter %d abstained without a delegation option", ErrInvalidDelegation, i)
			}
			res.SinkOf[i] = NoDelegate
			res.Delegators++
			continue
		}
		res.SinkOf[i] = sink[i]
		wi := 1
		if initial != nil {
			wi = initial[i]
		}
		res.Weight[sink[i]] += wi
		res.TotalWeight += wi
		if d.Delegate[i] != NoDelegate {
			res.Delegators++
		} else {
			// A non-abstained direct voter is its own sink; collecting here
			// keeps Sinks in ascending order without a second pass over n.
			res.Sinks = append(res.Sinks, i)
		}
		if depth[i] > res.LongestChain {
			res.LongestChain = depth[i]
		}
	}
	for _, v := range res.Sinks {
		if res.Weight[v] > res.MaxWeight {
			res.MaxWeight = res.Weight[v]
		}
	}
	r.dirty = false
	return res, nil
}

// ValidateLocal checks that every delegation edge of d is local (goes to a
// neighbor in the instance topology) and approval-consistent at margin
// alpha. It is used to reject adversarial mechanisms in tests and in the
// LOCAL simulator.
func (d *DelegationGraph) ValidateLocal(in *Instance, alpha float64) error {
	if len(d.Delegate) != in.N() {
		return fmt.Errorf("%w: delegation graph size %d vs instance %d", ErrInvalidDelegation, len(d.Delegate), in.N())
	}
	for i, j := range d.Delegate {
		if j == NoDelegate {
			continue
		}
		if !in.Topology().HasEdge(i, j) {
			return fmt.Errorf("%w: voter %d delegated to non-neighbor %d", ErrInvalidDelegation, i, j)
		}
		if !in.Approves(i, j, alpha) {
			return fmt.Errorf("%w: voter %d delegated to unapproved voter %d", ErrInvalidDelegation, i, j)
		}
	}
	return nil
}
