package core

import (
	"errors"
	"testing"
	"testing/quick"

	"liquid/internal/rng"
)

// cyclicGraph builds: 0 -> 1 -> 2 -> 0 (a 3-cycle), 3 -> 0 (drains into
// the cycle), 4 -> 5 (normal chain), 6 direct.
func cyclicGraph(t *testing.T) *DelegationGraph {
	t.Helper()
	d := NewDelegationGraph(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 0}, {4, 5}} {
		if err := d.SetDelegate(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestCycleMembersDetection(t *testing.T) {
	d := cyclicGraph(t)
	member := d.cycleMembers()
	want := []bool{true, true, true, false, false, false, false}
	for v := range want {
		if member[v] != want[v] {
			t.Fatalf("cycleMembers = %v, want %v", member, want)
		}
	}
}

func TestResolveWithPolicyError(t *testing.T) {
	d := cyclicGraph(t)
	if _, err := d.ResolveWithPolicy(CycleError); !errors.Is(err, ErrCyclicDelegation) {
		t.Fatalf("err = %v", err)
	}
	// Zero value behaves like CycleError.
	if _, err := d.ResolveWithPolicy(0); !errors.Is(err, ErrCyclicDelegation) {
		t.Fatalf("zero policy err = %v", err)
	}
	if _, err := d.ResolveWithPolicy(CyclePolicy(99)); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatalf("unknown policy err = %v", err)
	}
}

func TestResolveWithPolicyDirect(t *testing.T) {
	d := cyclicGraph(t)
	res, err := d.ResolveWithPolicy(CycleDirect)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle members 0,1,2 vote directly; 3's vote reaches 0.
	if res.Weight[0] != 2 || res.Weight[1] != 1 || res.Weight[2] != 1 {
		t.Fatalf("weights %v", res.Weight[:3])
	}
	if res.TotalWeight != 7 {
		t.Fatalf("total %d, want 7 (no votes lost)", res.TotalWeight)
	}
	if res.Weight[5] != 2 || res.Weight[6] != 1 {
		t.Fatalf("normal chain weights wrong: %v", res.Weight)
	}
}

func TestResolveWithPolicyAbstain(t *testing.T) {
	d := cyclicGraph(t)
	res, err := d.ResolveWithPolicy(CycleAbstain)
	if err != nil {
		t.Fatal(err)
	}
	// Votes of 0,1,2 (cycle) and 3 (drains into it) are discarded.
	if res.TotalWeight != 3 {
		t.Fatalf("total %d, want 3", res.TotalWeight)
	}
	for _, v := range []int{0, 1, 2, 3} {
		if res.SinkOf[v] != NoDelegate {
			t.Fatalf("voter %d should have lost its vote", v)
		}
	}
	if res.Weight[0] != 0 {
		t.Fatalf("cycle member retained weight %d", res.Weight[0])
	}
	// The healthy part is untouched.
	if res.Weight[5] != 2 || res.Weight[6] != 1 {
		t.Fatalf("weights %v", res.Weight)
	}
	// Sinks: only 5 and 6.
	if len(res.Sinks) != 2 || res.Sinks[0] != 5 || res.Sinks[1] != 6 {
		t.Fatalf("sinks %v", res.Sinks)
	}
	if res.MaxWeight != 2 {
		t.Fatalf("max weight %d", res.MaxWeight)
	}
}

func TestResolveWithPolicyAcyclicPassthrough(t *testing.T) {
	d := NewDelegationGraph(4)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []CyclePolicy{CycleError, CycleAbstain, CycleDirect} {
		res, err := d.ResolveWithPolicy(policy)
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		if res.TotalWeight != 4 || res.Weight[1] != 2 {
			t.Fatalf("policy %d: resolution %+v", policy, res)
		}
	}
}

func TestResolveWithPolicySelfContainedTwoCycle(t *testing.T) {
	d := NewDelegationGraph(2)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDelegate(1, 0); err != nil {
		t.Fatal(err)
	}
	res, err := d.ResolveWithPolicy(CycleAbstain)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight != 0 || len(res.Sinks) != 0 {
		t.Fatalf("everyone in the cycle: %+v", res)
	}
	res, err = d.ResolveWithPolicy(CycleDirect)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight != 2 || len(res.Sinks) != 2 {
		t.Fatalf("direct policy: %+v", res)
	}
}

func TestQuickCyclePolicyInvariants(t *testing.T) {
	// For arbitrary functional graphs (any Delegate assignment without
	// self-loops): CycleDirect preserves total weight n; CycleAbstain's
	// total equals n minus the voters draining into cycles; both agree with
	// plain Resolve on acyclic graphs.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		s := rng.New(seed)
		d := NewDelegationGraph(n)
		for i := 0; i < n; i++ {
			if s.Bernoulli(0.7) {
				j := s.IntN(n - 1)
				if j >= i {
					j++
				}
				if err := d.SetDelegate(i, j); err != nil {
					return false
				}
			}
		}
		direct, err := d.ResolveWithPolicy(CycleDirect)
		if err != nil {
			return false
		}
		if direct.TotalWeight != n {
			return false
		}
		abstain, err := d.ResolveWithPolicy(CycleAbstain)
		if err != nil {
			return false
		}
		if abstain.TotalWeight > n {
			return false
		}
		// Every vote in the abstain resolution must map to a real sink.
		for v := 0; v < n; v++ {
			if sk := abstain.SinkOf[v]; sk != NoDelegate && abstain.SinkOf[sk] != sk {
				return false
			}
		}
		// Weights are consistent with SinkOf counts.
		counts := make([]int, n)
		for v := 0; v < n; v++ {
			if sk := abstain.SinkOf[v]; sk != NoDelegate {
				counts[sk]++
			}
		}
		for v := 0; v < n; v++ {
			if counts[v] != abstain.Weight[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
