package core

import (
	"errors"
	"strings"
	"testing"

	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestCompleteGraphProperty(t *testing.T) {
	imp := mustInstance(t, graph.NewComplete(4), []float64{0.1, 0.2, 0.3, 0.4})
	if err := (CompleteGraph{}).Check(imp); err != nil {
		t.Fatalf("implicit complete rejected: %v", err)
	}
	expTop, err := graph.CompleteExplicit(4)
	if err != nil {
		t.Fatal(err)
	}
	exp := mustInstance(t, expTop, []float64{0.1, 0.2, 0.3, 0.4})
	if err := (CompleteGraph{}).Check(exp); err != nil {
		t.Fatalf("explicit complete rejected: %v", err)
	}
	starTop, err := graph.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	star := mustInstance(t, starTop, []float64{0.1, 0.2, 0.3, 0.4})
	if err := (CompleteGraph{}).Check(star); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("star accepted as complete: %v", err)
	}
}

func TestRegularProperty(t *testing.T) {
	g, err := graph.RandomRegular(10, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, make([]float64, 10))
	if err := (Regular{D: 3}).Check(in); err != nil {
		t.Fatal(err)
	}
	if err := (Regular{D: 4}).Check(in); err == nil {
		t.Fatal("wrong degree accepted")
	}
}

func TestDegreeProperties(t *testing.T) {
	g, err := graph.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, make([]float64, 5))
	if err := (MaxDegree{K: 4}).Check(in); err != nil {
		t.Fatal(err)
	}
	if err := (MaxDegree{K: 3}).Check(in); err == nil {
		t.Fatal("star center exceeds Δ≤3")
	}
	if err := (MinDegree{K: 1}).Check(in); err != nil {
		t.Fatal(err)
	}
	if err := (MinDegree{K: 2}).Check(in); err == nil {
		t.Fatal("leaves violate δ≥2")
	}
}

func TestPlausibleChangeability(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), []float64{0.4, 0.4, 0.5, 0.5})
	if err := (PlausibleChangeability{A: 0.4}).Check(in); err != nil {
		t.Fatal(err)
	}
	if err := (PlausibleChangeability{A: 0.46}).Check(in); err == nil {
		t.Fatal("mean 0.45 below a=0.46 accepted")
	}
	high := mustInstance(t, graph.NewComplete(2), []float64{0.9, 0.9})
	if err := (PlausibleChangeability{A: 0.4}).Check(high); err == nil {
		t.Fatal("mean above 1/2 accepted")
	}
}

func TestBoundedCompetency(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.3, 0.5, 0.7})
	if err := (BoundedCompetency{Beta: 0.2}).Check(in); err != nil {
		t.Fatal(err)
	}
	if err := (BoundedCompetency{Beta: 0.3}).Check(in); err == nil {
		t.Fatal("boundary value 0.3 should violate the open interval")
	}
	if err := (BoundedCompetency{Beta: 0}).Check(in); err == nil {
		t.Fatal("beta = 0 should be rejected")
	}
	if err := (BoundedCompetency{Beta: 0.5}).Check(in); err == nil {
		t.Fatal("beta = 0.5 should be rejected")
	}
}

func TestPropertySet(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), []float64{0.35, 0.4, 0.45, 0.48})
	ps := PropertySet{
		CompleteGraph{},
		PlausibleChangeability{A: 0.3},
		BoundedCompetency{Beta: 0.25},
	}
	if err := ps.Check(in); err != nil {
		t.Fatal(err)
	}
	name := ps.Name()
	for _, part := range []string{"K_n", "PC=0.3", "p∈(0.25,0.75)"} {
		if !strings.Contains(name, part) {
			t.Errorf("Name %q missing %q", name, part)
		}
	}
	bad := PropertySet{CompleteGraph{}, BoundedCompetency{Beta: 0.4}}
	if err := bad.Check(in); err == nil {
		t.Fatal("violating set accepted")
	}
}
