package core

import (
	"fmt"

	"liquid/internal/graph"
)

// Property is a graph restriction from Definition 1: a predicate over
// problem instances. An instance satisfies a restriction set when every
// property's Check returns nil.
type Property interface {
	// Name is a short identifier for reports ("K_n", "Δ≤k", ...).
	Name() string
	// Check returns nil if the instance satisfies the property, or an error
	// explaining the violation.
	Check(in *Instance) error
}

// PropertySet bundles properties; it is itself a Property.
type PropertySet []Property

// Name implements Property.
func (ps PropertySet) Name() string {
	out := "{"
	for i, p := range ps {
		if i > 0 {
			out += ", "
		}
		out += p.Name()
	}
	return out + "}"
}

// Check implements Property: all members must hold.
func (ps PropertySet) Check(in *Instance) error {
	for _, p := range ps {
		if err := p.Check(in); err != nil {
			return err
		}
	}
	return nil
}

// CompleteGraph is the restriction K_n: the topology is a complete graph.
type CompleteGraph struct{}

// Name implements Property.
func (CompleteGraph) Name() string { return "K_n" }

// Check implements Property.
func (CompleteGraph) Check(in *Instance) error {
	if _, ok := in.Topology().(graph.Complete); ok {
		return nil
	}
	n := in.N()
	for v := 0; v < n; v++ {
		if in.Topology().Degree(v) != n-1 {
			return fmt.Errorf("%w: vertex %d has degree %d, complete graph needs %d",
				ErrInvalidInstance, v, in.Topology().Degree(v), n-1)
		}
	}
	return nil
}

// Regular is the restriction Rand(n, d) read structurally: every vertex has
// degree exactly D.
type Regular struct {
	D int
}

// Name implements Property.
func (r Regular) Name() string { return fmt.Sprintf("Rand(n,%d)", r.D) }

// Check implements Property.
func (r Regular) Check(in *Instance) error {
	if !graph.IsRegular(in.Topology(), r.D) {
		return fmt.Errorf("%w: graph is not %d-regular", ErrInvalidInstance, r.D)
	}
	return nil
}

// MaxDegree is the restriction Δ <= K.
type MaxDegree struct {
	K int
}

// Name implements Property.
func (m MaxDegree) Name() string { return fmt.Sprintf("Δ≤%d", m.K) }

// Check implements Property.
func (m MaxDegree) Check(in *Instance) error {
	if !graph.MaxDegreeAtMost(in.Topology(), m.K) {
		return fmt.Errorf("%w: maximum degree exceeds %d", ErrInvalidInstance, m.K)
	}
	return nil
}

// MinDegree is the restriction δ >= K.
type MinDegree struct {
	K int
}

// Name implements Property.
func (m MinDegree) Name() string { return fmt.Sprintf("δ≥%d", m.K) }

// Check implements Property.
func (m MinDegree) Check(in *Instance) error {
	if !graph.MinDegreeAtLeast(in.Topology(), m.K) {
		return fmt.Errorf("%w: minimum degree below %d", ErrInvalidInstance, m.K)
	}
	return nil
}

// PlausibleChangeability is the restriction PC = a: the mean competency
// lies in [A, 1/2], i.e. it is close enough to 1/2 from below that enough
// delegation can change the voting outcome.
type PlausibleChangeability struct {
	A float64
}

// Name implements Property.
func (pc PlausibleChangeability) Name() string { return fmt.Sprintf("PC=%g", pc.A) }

// Check implements Property.
func (pc PlausibleChangeability) Check(in *Instance) error {
	mean := in.MeanCompetency()
	if mean < pc.A || mean > 0.5 {
		return fmt.Errorf("%w: mean competency %v outside [%v, 1/2]", ErrInvalidInstance, mean, pc.A)
	}
	return nil
}

// BoundedCompetency is the restriction p in (Beta, 1-Beta): no voter is
// (almost) completely incompetent or competent.
type BoundedCompetency struct {
	Beta float64
}

// Name implements Property.
func (b BoundedCompetency) Name() string { return fmt.Sprintf("p∈(%g,%g)", b.Beta, 1-b.Beta) }

// Check implements Property.
func (b BoundedCompetency) Check(in *Instance) error {
	if b.Beta <= 0 || b.Beta >= 0.5 {
		return fmt.Errorf("%w: beta %v not in (0, 1/2)", ErrInvalidInstance, b.Beta)
	}
	for i := 0; i < in.N(); i++ {
		p := in.Competency(i)
		if p <= b.Beta || p >= 1-b.Beta {
			return fmt.Errorf("%w: p[%d] = %v outside (%v, %v)", ErrInvalidInstance, i, p, b.Beta, 1-b.Beta)
		}
	}
	return nil
}
