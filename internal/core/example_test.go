package core_test

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/graph"
)

// Example builds the paper's Figure 2 instance and inspects approval sets.
func Example() {
	p := []float64{0.8, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		panic(err)
	}
	fmt.Println("voters:", in.N())
	fmt.Println("|J(v9)| at alpha=0.01:", in.ApprovalCount(8, 0.01))
	fmt.Println("|J(v1)| at alpha=0.01:", in.ApprovalCount(0, 0.01))
	// Output:
	// voters: 9
	// |J(v9)| at alpha=0.01: 8
	// |J(v1)| at alpha=0.01: 0
}

// ExampleDelegationGraph_Resolve resolves a delegation chain into sinks and
// weights.
func ExampleDelegationGraph_Resolve() {
	d := core.NewDelegationGraph(4)
	_ = d.SetDelegate(0, 1) // 0 -> 1 -> 2; 3 votes directly
	_ = d.SetDelegate(1, 2)
	res, err := d.Resolve()
	if err != nil {
		panic(err)
	}
	fmt.Println("sinks:", res.Sinks)
	fmt.Println("weight of voter 2:", res.Weight[2])
	fmt.Println("longest chain:", res.LongestChain)
	// Output:
	// sinks: [2 3]
	// weight of voter 2: 3
	// longest chain: 2
}

// ExampleDelegationGraph_ResolveWithWeights shows token-weighted (DAO)
// resolution.
func ExampleDelegationGraph_ResolveWithWeights() {
	d := core.NewDelegationGraph(3)
	_ = d.SetDelegate(0, 2)
	res, err := d.ResolveWithWeights([]int{100, 1, 10}) // voter 0 is a whale
	if err != nil {
		panic(err)
	}
	fmt.Println("sink 2 holds:", res.Weight[2])
	// Output:
	// sink 2 holds: 110
}
