package core

import (
	"errors"
	"testing"
	"testing/quick"

	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestResolveAllDirect(t *testing.T) {
	d := NewDelegationGraph(4)
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != 4 || res.MaxWeight != 1 || res.Delegators != 0 {
		t.Fatalf("resolution %+v", res)
	}
	if res.TotalWeight != 4 || res.LongestChain != 0 {
		t.Fatalf("resolution %+v", res)
	}
	for i, s := range res.SinkOf {
		if s != i {
			t.Fatalf("SinkOf[%d] = %d", i, s)
		}
	}
}

func TestResolveChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 (sink), 4 direct.
	d := NewDelegationGraph(5)
	for i := 0; i < 3; i++ {
		if err := d.SetDelegate(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != 2 {
		t.Fatalf("sinks %v", res.Sinks)
	}
	if res.Weight[3] != 4 || res.Weight[4] != 1 {
		t.Fatalf("weights %v", res.Weight)
	}
	if res.MaxWeight != 4 || res.LongestChain != 3 || res.Delegators != 3 {
		t.Fatalf("resolution %+v", res)
	}
	for i := 0; i <= 3; i++ {
		if res.SinkOf[i] != 3 {
			t.Fatalf("SinkOf[%d] = %d", i, res.SinkOf[i])
		}
	}
}

func TestResolveStarDictator(t *testing.T) {
	// Everyone delegates to voter 0: the Figure 1 outcome.
	const n = 9
	d := NewDelegationGraph(n)
	for i := 1; i < n; i++ {
		if err := d.SetDelegate(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != 1 || res.Sinks[0] != 0 || res.MaxWeight != n {
		t.Fatalf("resolution %+v", res)
	}
}

func TestResolveDetectsCycles(t *testing.T) {
	tests := []struct {
		name  string
		edges [][2]int
	}{
		{"2-cycle", [][2]int{{0, 1}, {1, 0}}},
		{"3-cycle", [][2]int{{0, 1}, {1, 2}, {2, 0}}},
		{"tail into cycle", [][2]int{{3, 0}, {0, 1}, {1, 2}, {2, 0}}},
	}
	for _, tt := range tests {
		d := NewDelegationGraph(4)
		for _, e := range tt.edges {
			if err := d.SetDelegate(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Resolve(); !errors.Is(err, ErrCyclicDelegation) {
			t.Errorf("%s: err = %v, want ErrCyclicDelegation", tt.name, err)
		}
	}
}

func TestSetDelegateValidation(t *testing.T) {
	d := NewDelegationGraph(3)
	if err := d.SetDelegate(0, 0); !errors.Is(err, ErrInvalidDelegation) {
		t.Error("self-delegation accepted")
	}
	if err := d.SetDelegate(-1, 2); !errors.Is(err, ErrInvalidDelegation) {
		t.Error("negative index accepted")
	}
	if err := d.SetDelegate(0, 3); !errors.Is(err, ErrInvalidDelegation) {
		t.Error("out-of-range target accepted")
	}
}

func TestAbstention(t *testing.T) {
	// 0 delegates to 1 but abstains; 1 votes directly.
	d := NewDelegationGraph(3)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	d.SetAbstained(0)
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight != 2 {
		t.Fatalf("TotalWeight = %d, want 2", res.TotalWeight)
	}
	if res.SinkOf[0] != NoDelegate {
		t.Fatal("abstainer should have no sink")
	}
	if res.Weight[1] != 1 {
		t.Fatalf("weight of 1 = %d, abstained vote should not count", res.Weight[1])
	}
	if res.Delegators != 1 {
		t.Fatalf("Delegators = %d", res.Delegators)
	}
}

func TestAbstentionWithoutDelegationRejected(t *testing.T) {
	// The paper's Section 6 model: only voters that can delegate may
	// abstain.
	d := NewDelegationGraph(2)
	d.SetAbstained(0)
	if _, err := d.Resolve(); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatalf("err = %v, want ErrInvalidDelegation", err)
	}
}

func TestNumDelegators(t *testing.T) {
	d := NewDelegationGraph(4)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDelegate(2, 3); err != nil {
		t.Fatal(err)
	}
	d.SetAbstained(2)
	if got := d.NumDelegators(); got != 2 {
		t.Fatalf("NumDelegators = %d", got)
	}
}

func TestValidateLocal(t *testing.T) {
	g, err := graph.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, []float64{0.9, 0.2, 0.3, 0.4})
	const alpha = 0.1

	good := NewDelegationGraph(4)
	if err := good.SetDelegate(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := good.ValidateLocal(in, alpha); err != nil {
		t.Fatalf("valid delegation rejected: %v", err)
	}

	nonNeighbor := NewDelegationGraph(4)
	if err := nonNeighbor.SetDelegate(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := nonNeighbor.ValidateLocal(in, alpha); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatalf("non-neighbor delegation: err = %v", err)
	}

	unapproved := NewDelegationGraph(4)
	if err := unapproved.SetDelegate(0, 1); err != nil { // center to weaker leaf
		t.Fatal(err)
	}
	if err := unapproved.ValidateLocal(in, alpha); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatalf("unapproved delegation: err = %v", err)
	}

	wrongSize := NewDelegationGraph(3)
	if err := wrongSize.ValidateLocal(in, alpha); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatalf("size mismatch: err = %v", err)
	}
}

func TestQuickResolveInvariants(t *testing.T) {
	// For random "delegate upward" graphs (always acyclic), resolution
	// weights must sum to n, every sink must map to itself, and the number
	// of sinks must be n - delegators.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		s := rng.New(seed)
		d := NewDelegationGraph(n)
		delegators := 0
		for i := 0; i < n-1; i++ {
			if s.Bernoulli(0.6) {
				// Delegate to any strictly higher index: acyclic.
				if err := d.SetDelegate(i, i+1+s.IntN(n-i-1)); err != nil {
					return false
				}
				delegators++
			}
		}
		res, err := d.Resolve()
		if err != nil {
			return false
		}
		total := 0
		for _, w := range res.Weight {
			total += w
		}
		if total != n || res.TotalWeight != n {
			return false
		}
		if res.Delegators != delegators {
			return false
		}
		if len(res.Sinks) != n-delegators {
			return false
		}
		for _, sk := range res.Sinks {
			if res.SinkOf[sk] != sk || res.Weight[sk] < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestResolveWithWeights(t *testing.T) {
	// Token-weighted DAO vote: voter 0 holds 10 tokens and delegates to 2;
	// voter 1 holds 0 tokens.
	d := NewDelegationGraph(3)
	if err := d.SetDelegate(0, 2); err != nil {
		t.Fatal(err)
	}
	res, err := d.ResolveWithWeights([]int{10, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight[2] != 15 {
		t.Fatalf("sink 2 weight %d, want 15", res.Weight[2])
	}
	if res.Weight[1] != 0 {
		t.Fatalf("sink 1 weight %d, want 0", res.Weight[1])
	}
	if res.TotalWeight != 15 {
		t.Fatalf("total weight %d, want 15", res.TotalWeight)
	}
	if res.MaxWeight != 15 {
		t.Fatalf("max weight %d", res.MaxWeight)
	}
	// Voter 1 is still a sink (it votes), just with zero power.
	if len(res.Sinks) != 2 {
		t.Fatalf("sinks %v", res.Sinks)
	}
}

func TestResolveWithWeightsValidation(t *testing.T) {
	d := NewDelegationGraph(2)
	if _, err := d.ResolveWithWeights([]int{1}); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := d.ResolveWithWeights([]int{1, -2}); !errors.Is(err, ErrInvalidDelegation) {
		t.Fatal("negative weight accepted")
	}
}

func TestResolveWithNilWeightsMatchesResolve(t *testing.T) {
	d := NewDelegationGraph(4)
	if err := d.SetDelegate(0, 3); err != nil {
		t.Fatal(err)
	}
	a, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.ResolveWithWeights([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Weight {
		if a.Weight[v] != b.Weight[v] {
			t.Fatalf("weights differ at %d", v)
		}
	}
	if a.TotalWeight != b.TotalWeight || a.MaxWeight != b.MaxWeight {
		t.Fatal("aggregate weights differ")
	}
}
