package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"liquid/internal/graph"
	"liquid/internal/rng"
)

func mustInstance(t *testing.T, top graph.Topology, p []float64) *Instance {
	t.Helper()
	in, err := NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	top := graph.NewComplete(3)
	tests := []struct {
		name string
		top  graph.Topology
		p    []float64
	}{
		{"nil topology", nil, []float64{0.5}},
		{"length mismatch", top, []float64{0.5}},
		{"negative p", top, []float64{0.5, -0.1, 0.5}},
		{"p above one", top, []float64{0.5, 1.1, 0.5}},
		{"NaN", top, []float64{0.5, math.NaN(), 0.5}},
	}
	for _, tt := range tests {
		if _, err := NewInstance(tt.top, tt.p); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("%s: err = %v, want ErrInvalidInstance", tt.name, err)
		}
	}
}

func TestInstanceCopiesCompetencies(t *testing.T) {
	p := []float64{0.1, 0.9}
	in := mustInstance(t, graph.NewComplete(2), p)
	p[0] = 0.8
	if in.Competency(0) != 0.1 {
		t.Fatal("instance should copy its competency vector")
	}
	got := in.Competencies()
	got[1] = 0
	if in.Competency(1) != 0.9 {
		t.Fatal("Competencies should return a copy")
	}
}

func TestApproves(t *testing.T) {
	g, err := graph.Star(4) // center 0
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, []float64{0.9, 0.5, 0.85, 0.1})
	const alpha = 0.1
	if !in.Approves(1, 0, alpha) {
		t.Error("leaf 1 should approve center")
	}
	if in.Approves(0, 1, alpha) {
		t.Error("center should not approve weaker leaf")
	}
	if in.Approves(0, 2, alpha) {
		t.Error("0.85 is within alpha of 0.9")
	}
	if in.Approves(1, 2, alpha) {
		t.Error("leaves are not adjacent in a star")
	}
	if in.Approves(1, 1, alpha) {
		t.Error("self-approval")
	}
}

func TestApprovalSetAndCount(t *testing.T) {
	g, err := graph.CompleteExplicit(5)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	in := mustInstance(t, g, p)
	tests := []struct {
		voter int
		alpha float64
		want  []int
	}{
		{0, 0.1, []int{1, 2, 3, 4}},
		{0, 0.25, []int{2, 3, 4}},
		{2, 0.2, []int{3, 4}},
		{2, 0.21, []int{4}},
		{4, 0.1, nil},
	}
	for _, tt := range tests {
		got := in.ApprovalSet(tt.voter, tt.alpha)
		if len(got) != len(tt.want) {
			t.Fatalf("ApprovalSet(%d, %v) = %v, want %v", tt.voter, tt.alpha, got, tt.want)
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Fatalf("ApprovalSet(%d, %v) = %v, want %v", tt.voter, tt.alpha, got, tt.want)
			}
		}
		if c := in.ApprovalCount(tt.voter, tt.alpha); c != len(tt.want) {
			t.Fatalf("ApprovalCount(%d, %v) = %d, want %d", tt.voter, tt.alpha, c, len(tt.want))
		}
	}
}

func TestCompleteApprovalFastPathMatchesExplicit(t *testing.T) {
	s := rng.New(42)
	const n = 60
	p := make([]float64, n)
	for i := range p {
		p[i] = s.Float64()
	}
	// Force some exact ties to exercise boundary handling.
	p[5] = p[10]
	p[7] = p[10]

	expTop, err := graph.CompleteExplicit(n)
	if err != nil {
		t.Fatal(err)
	}
	exp := mustInstance(t, expTop, p)
	imp := mustInstance(t, graph.NewComplete(n), p)

	for _, alpha := range []float64{0, 0.01, 0.1, 0.5, 1} {
		for v := 0; v < n; v++ {
			want := exp.ApprovalCount(v, alpha)
			if got := imp.ApprovalCount(v, alpha); got != want {
				t.Fatalf("alpha=%v voter=%d: fast count %d, scan count %d", alpha, v, got, want)
			}
		}
	}
}

func TestSampleApprovedUniform(t *testing.T) {
	g, err := graph.CompleteExplicit(4)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, []float64{0.1, 0.6, 0.7, 0.8})
	s := rng.New(1)
	counts := make(map[int]int)
	const trials = 30000
	for i := 0; i < trials; i++ {
		j, ok := in.SampleApproved(0, 0.2, s)
		if !ok {
			t.Fatal("approval set should be nonempty")
		}
		counts[j]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected 3 distinct delegates, got %v", counts)
	}
	for j, c := range counts {
		f := float64(c) / trials
		if math.Abs(f-1.0/3) > 0.02 {
			t.Fatalf("delegate %d frequency %v, want ~1/3", j, f)
		}
	}
}

func TestSampleApprovedEmpty(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.5, 0.5, 0.5})
	if _, ok := in.SampleApproved(0, 0.1, rng.New(2)); ok {
		t.Fatal("no voter is 0.1 better; sample should fail")
	}
}

func TestCompleteSampleApprovedMatchesDistribution(t *testing.T) {
	// The complete-topology fast path must sample uniformly over the same
	// set as the explicit scan.
	p := []float64{0.2, 0.5, 0.5, 0.8, 0.9}
	imp := mustInstance(t, graph.NewComplete(len(p)), p)
	s := rng.New(3)
	counts := make(map[int]int)
	const trials = 40000
	for i := 0; i < trials; i++ {
		j, ok := imp.SampleApproved(1, 0.25, s)
		if !ok {
			t.Fatal("expected delegates")
		}
		counts[j]++
	}
	// Approval set of voter 1 (p=0.5, alpha=0.25): voters 3 (0.8), 4 (0.9).
	if len(counts) != 2 || counts[3] == 0 || counts[4] == 0 {
		t.Fatalf("unexpected delegate set %v", counts)
	}
	f3 := float64(counts[3]) / trials
	if math.Abs(f3-0.5) > 0.02 {
		t.Fatalf("delegate 3 frequency %v, want ~0.5", f3)
	}
}

func TestCompleteSampleApprovedAlphaZeroExcludesSelf(t *testing.T) {
	p := []float64{0.5, 0.5, 0.5}
	imp := mustInstance(t, graph.NewComplete(3), p)
	s := rng.New(4)
	for i := 0; i < 1000; i++ {
		j, ok := imp.SampleApproved(1, 0, s)
		if !ok {
			t.Fatal("alpha=0 with ties should have delegates")
		}
		if j == 1 {
			t.Fatal("sampled self")
		}
	}
}

func TestTopByCompetency(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(5), []float64{0.3, 0.9, 0.1, 0.7, 0.5})
	got := in.TopByCompetency(3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopByCompetency(3) = %v, want %v", got, want)
		}
	}
	if len(in.TopByCompetency(-1)) != 0 {
		t.Fatal("negative k should clamp to 0")
	}
	if len(in.TopByCompetency(99)) != 5 {
		t.Fatal("large k should clamp to n")
	}
}

func TestMeanCompetency(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), []float64{0.2, 0.4, 0.6, 0.8})
	if got := in.MeanCompetency(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("MeanCompetency = %v", got)
	}
	empty := mustInstance(t, graph.NewComplete(0), nil)
	if empty.MeanCompetency() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestQuickApprovalCountMatchesSetSize(t *testing.T) {
	f := func(seed uint64, nRaw uint8, alphaRaw float64) bool {
		n := int(nRaw%20) + 2
		alpha := math.Abs(math.Mod(alphaRaw, 1))
		if math.IsNaN(alpha) {
			alpha = 0.1
		}
		s := rng.New(seed)
		p := make([]float64, n)
		for i := range p {
			p[i] = s.Float64()
		}
		g, err := graph.ErdosRenyi(n, 0.4, s)
		if err != nil {
			return false
		}
		in, err := NewInstance(g, p)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if in.ApprovalCount(v, alpha) != len(in.ApprovalSet(v, alpha)) {
				return false
			}
			// Approval sets shrink as alpha grows.
			if in.ApprovalCount(v, alpha) < in.ApprovalCount(v, alpha+0.1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedOrderIsStable(t *testing.T) {
	p := []float64{0.5, 0.5, 0.2}
	in := mustInstance(t, graph.NewComplete(3), p)
	top := in.TopByCompetency(3)
	if !sort.SliceIsSorted(top, func(a, b int) bool {
		return in.Competency(top[a]) > in.Competency(top[b])
	}) && !sort.SliceIsSorted(top, func(a, b int) bool {
		return in.Competency(top[a]) >= in.Competency(top[b])
	}) {
		t.Fatalf("TopByCompetency not ordered by competency: %v", top)
	}
	if in.Competency(top[0]) < in.Competency(top[1]) || in.Competency(top[1]) < in.Competency(top[2]) {
		t.Fatalf("TopByCompetency not non-increasing: %v", top)
	}
}
