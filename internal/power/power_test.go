package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestGiniEqual(t *testing.T) {
	w := Weights{5, 5, 5, 5}
	g, err := w.Gini()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-12 {
		t.Fatalf("equal weights Gini = %v, want 0", g)
	}
}

func TestGiniDictator(t *testing.T) {
	w := Weights{0, 0, 0, 0, 0, 0, 0, 0, 0, 100}
	g, err := w.Gini()
	if err != nil {
		t.Fatal(err)
	}
	// For n=10 with one holder, G = (n-1)/n = 0.9.
	if math.Abs(g-0.9) > 1e-12 {
		t.Fatalf("dictator Gini = %v, want 0.9", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {1, 3}: G = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
	g, err := Weights{1, 3}.Gini()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini = %v, want 0.25", g)
	}
}

func TestGiniErrors(t *testing.T) {
	if _, err := (Weights{}).Gini(); !errors.Is(err, ErrNoWeights) {
		t.Fatal("empty accepted")
	}
	if _, err := (Weights{0, 0}).Gini(); !errors.Is(err, ErrNoWeights) {
		t.Fatal("zero total accepted")
	}
}

func TestNakamoto(t *testing.T) {
	tests := []struct {
		w    Weights
		want int
	}{
		{Weights{100}, 1},
		{Weights{60, 40}, 1},              // 60 > 50
		{Weights{50, 50}, 2},              // need strict majority
		{Weights{40, 30, 20, 10}, 2},      // 40+30 = 70 > 50
		{Weights{25, 25, 25, 25}, 3},      // 50 is not > 50
		{Weights{1, 1, 1, 1, 1, 1, 1}, 4}, // 4/7 > 1/2
	}
	for _, tt := range tests {
		got, err := tt.w.Nakamoto()
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Nakamoto(%v) = %d, want %d", tt.w, got, tt.want)
		}
	}
	if _, err := (Weights{}).Nakamoto(); !errors.Is(err, ErrNoWeights) {
		t.Fatal("empty accepted")
	}
}

func TestEntropy(t *testing.T) {
	h, err := Weights{1, 1, 1, 1}.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-2) > 1e-12 {
		t.Fatalf("uniform-4 entropy = %v, want 2 bits", h)
	}
	h, err = Weights{0, 7, 0}.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("dictator entropy = %v, want 0", h)
	}
}

func TestEffectiveHolders(t *testing.T) {
	e, err := Weights{2, 2, 2, 2, 2}.EffectiveHolders()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-5) > 1e-12 {
		t.Fatalf("equal-5 effective holders = %v, want 5", e)
	}
	e, err = Weights{10, 0, 0}.EffectiveHolders()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-12 {
		t.Fatalf("dictator effective holders = %v, want 1", e)
	}
}

func TestTopShare(t *testing.T) {
	w := Weights{4, 3, 2, 1}
	for _, tt := range []struct {
		k    int
		want float64
	}{{0, 0}, {1, 0.4}, {2, 0.7}, {4, 1}, {10, 1}} {
		got, err := w.TopShare(tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("TopShare(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

func TestFromInts(t *testing.T) {
	w := FromInts([]int{1, 2, 3})
	if w.Total() != 6 {
		t.Fatalf("Total = %v", w.Total())
	}
}

func TestQuickMetricsBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make(Weights, len(raw))
		total := 0.0
		for i, r := range raw {
			w[i] = float64(r)
			total += float64(r)
		}
		if total == 0 {
			_, err := w.Gini()
			return errors.Is(err, ErrNoWeights)
		}
		g, err := w.Gini()
		if err != nil || g < 0 || g >= 1 {
			return false
		}
		nk, err := w.Nakamoto()
		if err != nil || nk < 1 || nk > len(w) {
			return false
		}
		h, err := w.Entropy()
		if err != nil || h < 0 || h > math.Log2(float64(len(w)))+1e-9 {
			return false
		}
		e, err := w.EffectiveHolders()
		if err != nil || e < 1-1e-9 || e > float64(len(w))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
