package power_test

import (
	"fmt"

	"liquid/internal/power"
)

// Example computes the concentration metrics for a whale-heavy weight
// distribution.
func Example() {
	w := power.FromInts([]int{50, 20, 10, 10, 5, 5})
	gini, err := w.Gini()
	if err != nil {
		panic(err)
	}
	nak, err := w.Nakamoto()
	if err != nil {
		panic(err)
	}
	eff, err := w.EffectiveHolders()
	if err != nil {
		panic(err)
	}
	fmt.Printf("Gini: %.3f\n", gini)
	fmt.Println("Nakamoto coefficient:", nak)
	fmt.Printf("effective holders: %.2f\n", eff)
	// Output:
	// Gini: 0.450
	// Nakamoto coefficient: 2
	// effective holders: 3.17
}
