// Package power quantifies voting-power concentration in delegation
// outcomes — the quantity the paper identifies as the enemy of the
// do-no-harm property, and the one empirical blockchain-governance studies
// (which the paper cites) measure on real systems. It provides the Gini
// coefficient, the Nakamoto coefficient, Shannon entropy, and the effective
// number of power holders (inverse Herfindahl–Hirschman index).
package power

import (
	"errors"
	"math"
	"sort"
)

// ErrNoWeights reports an empty weight vector.
var ErrNoWeights = errors.New("power: no weights")

// Weights is a non-negative voting-power vector (e.g. sink weights of a
// delegation resolution). Zero entries are allowed and count as voters with
// no power.
type Weights []float64

// FromInts converts integer weights.
func FromInts(ws []int) Weights {
	out := make(Weights, len(ws))
	for i, w := range ws {
		out[i] = float64(w)
	}
	return out
}

// Total returns the sum of weights.
func (w Weights) Total() float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	return s
}

// Gini returns the Gini coefficient in [0, 1): 0 for perfectly equal
// weights, approaching 1 as one holder takes everything. It returns an
// error when the vector is empty or sums to zero.
func (w Weights) Gini() (float64, error) {
	if len(w) == 0 {
		return 0, ErrNoWeights
	}
	total := w.Total()
	if total <= 0 {
		return 0, ErrNoWeights
	}
	sorted := append(Weights(nil), w...)
	sort.Float64s(sorted)
	// G = (2 * sum_i i*w_(i) ) / (n * total) - (n+1)/n with 1-based ranks.
	var rankSum float64
	for i, v := range sorted {
		rankSum += float64(i+1) * v
	}
	n := float64(len(w))
	g := 2*rankSum/(n*total) - (n+1)/n
	if g < 0 {
		g = 0
	}
	return g, nil
}

// Nakamoto returns the Nakamoto coefficient: the minimum number of holders
// whose combined weight strictly exceeds half of the total. A dictatorship
// has coefficient 1; equal weights give ceil((n+1)/2)... more precisely the
// smallest k with sum of the k largest weights > total/2.
func (w Weights) Nakamoto() (int, error) {
	if len(w) == 0 {
		return 0, ErrNoWeights
	}
	total := w.Total()
	if total <= 0 {
		return 0, ErrNoWeights
	}
	sorted := append(Weights(nil), w...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var acc float64
	for k, v := range sorted {
		acc += v
		if acc > total/2 {
			return k + 1, nil
		}
	}
	// Unreachable for positive totals, but return n defensively.
	return len(w), nil
}

// Entropy returns the Shannon entropy (in bits) of the normalized weight
// distribution. Higher entropy means more dispersed power; log2(n) is the
// maximum, 0 a dictatorship.
func (w Weights) Entropy() (float64, error) {
	total := w.Total()
	if len(w) == 0 || total <= 0 {
		return 0, ErrNoWeights
	}
	var h float64
	for _, v := range w {
		if v <= 0 {
			continue
		}
		p := v / total
		h -= p * math.Log2(p)
	}
	return h, nil
}

// EffectiveHolders returns the inverse Herfindahl–Hirschman index:
// 1 / sum_i (w_i/total)^2, interpretable as the "effective number" of
// equally powerful holders. Equal weights over n holders give n; a
// dictatorship gives 1.
func (w Weights) EffectiveHolders() (float64, error) {
	total := w.Total()
	if len(w) == 0 || total <= 0 {
		return 0, ErrNoWeights
	}
	var hhi float64
	for _, v := range w {
		p := v / total
		hhi += p * p
	}
	return 1 / hhi, nil
}

// TopShare returns the fraction of total weight held by the k largest
// holders (clamped to [0, n]).
func (w Weights) TopShare(k int) (float64, error) {
	total := w.Total()
	if len(w) == 0 || total <= 0 {
		return 0, ErrNoWeights
	}
	if k <= 0 {
		return 0, nil
	}
	if k > len(w) {
		k = len(w)
	}
	sorted := append(Weights(nil), w...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var acc float64
	for i := 0; i < k; i++ {
		acc += sorted[i]
	}
	return acc / total, nil
}
