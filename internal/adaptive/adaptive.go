// Package adaptive simulates liquid democracy over a *sequence* of issues:
// after every decided issue, voters observe who was right, update the
// shared track record, and re-derive their approval sets for the next
// issue. This closes the loop the paper's model leaves open — where
// approval information comes from — and produces learning curves: accuracy
// as a function of how many issues the community has already decided
// together.
package adaptive

import (
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/history"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// ErrInvalidSequence reports invalid sequence parameters.
var ErrInvalidSequence = errors.New("adaptive: invalid sequence")

// Options configures a repeated-election simulation.
type Options struct {
	// Issues is the number of sequential decisions (required, >= 1).
	Issues int
	// Alpha is the approval margin applied to observed accuracies.
	Alpha float64
	// Warmup is the number of initial issues decided by direct voting while
	// the first track records accumulate (default 1).
	Warmup int
	// Seed drives all randomness.
	Seed uint64
}

// Step records one issue of the sequence.
type Step struct {
	// Issue is the 0-based issue index.
	Issue int
	// ProbCorrect is the exact probability that this issue's (delegated)
	// vote decides correctly, given the delegation graph realized from the
	// track record so far.
	ProbCorrect float64
	// Decided reports the sampled outcome actually used to extend the
	// record (true = community decided correctly).
	Decided bool
	// Delegators and MaxWeight describe the realized delegation structure.
	Delegators int
	MaxWeight  int
	// Misdelegation is the fraction of delegation edges violating the true
	// approval relation.
	Misdelegation float64
}

// Sequence is the full simulation result.
type Sequence struct {
	Steps []Step
	// DirectProb is the constant exact probability of direct voting on the
	// instance, for reference.
	DirectProb float64
}

// Run simulates the adaptive sequence on the instance with the given
// threshold mechanism template (its Alpha is overridden by opts.Alpha).
func Run(in *core.Instance, opts Options) (*Sequence, error) {
	if opts.Issues < 1 {
		return nil, fmt.Errorf("%w: issues %d", ErrInvalidSequence, opts.Issues)
	}
	if opts.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidSequence, opts.Alpha)
	}
	if opts.Warmup < 1 {
		opts.Warmup = 1
	}
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty instance", ErrInvalidSequence)
	}

	root := rng.New(opts.Seed)
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		return nil, err
	}
	seq := &Sequence{DirectProb: pd, Steps: make([]Step, 0, opts.Issues)}

	record := &history.TrackRecord{Scores: make([]int, n)}
	mech := mechanism.ApprovalThreshold{Alpha: opts.Alpha}

	for issue := 0; issue < opts.Issues; issue++ {
		s := root.Derive(uint64(issue) + 1)
		step := Step{Issue: issue}

		var d *core.DelegationGraph
		if issue < opts.Warmup {
			d = core.NewDelegationGraph(n)
		} else {
			surrogate, err := record.SurrogateInstance(in)
			if err != nil {
				return nil, err
			}
			d, err = mech.Apply(surrogate, s.DeriveString("mech"))
			if err != nil {
				return nil, err
			}
		}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		pm, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		step.ProbCorrect = pm
		step.Delegators = res.Delegators
		step.MaxWeight = res.MaxWeight
		step.Misdelegation = history.MisdelegationRate(in, d, opts.Alpha)

		// Realize the issue: every voter votes (their own draw extends the
		// record whether or not they delegated — delegators still observe
		// the outcome and their own private judgement of it).
		votes := s.DeriveString("votes")
		correctWeight := 0
		ownVote := make([]bool, n)
		for v := 0; v < n; v++ {
			ownVote[v] = votes.Bernoulli(in.Competency(v))
		}
		for v := 0; v < n; v++ {
			sk := res.SinkOf[v]
			if sk == core.NoDelegate {
				continue
			}
			if ownVote[sk] {
				correctWeight++
			}
		}
		step.Decided = 2*correctWeight > res.TotalWeight
		for v := 0; v < n; v++ {
			if ownVote[v] {
				record.Scores[v]++
			}
		}
		record.T++

		seq.Steps = append(seq.Steps, step)
	}
	return seq, nil
}

// MeanProb returns the average exact per-issue probability over the steps
// in [from, to).
func (s *Sequence) MeanProb(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Steps) {
		to = len(s.Steps)
	}
	if to <= from {
		return 0
	}
	var sum float64
	for _, st := range s.Steps[from:to] {
		sum += st.ProbCorrect
	}
	return sum / float64(to-from)
}
