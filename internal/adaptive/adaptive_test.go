package adaptive

import (
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func testInstance(t *testing.T, n int, lo, hi float64, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = lo + (hi-lo)*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunValidation(t *testing.T) {
	in := testInstance(t, 5, 0.3, 0.6, 1)
	if _, err := Run(in, Options{Issues: 0, Alpha: 0.1}); !errors.Is(err, ErrInvalidSequence) {
		t.Error("issues=0 accepted")
	}
	if _, err := Run(in, Options{Issues: 3, Alpha: -1}); !errors.Is(err, ErrInvalidSequence) {
		t.Error("negative alpha accepted")
	}
	empty, err := core.NewInstance(graph.NewComplete(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(empty, Options{Issues: 3, Alpha: 0.1}); !errors.Is(err, ErrInvalidSequence) {
		t.Error("empty instance accepted")
	}
}

func TestWarmupIsDirect(t *testing.T) {
	in := testInstance(t, 51, 0.3, 0.49, 2)
	seq, err := Run(in, Options{Issues: 3, Alpha: 0.05, Warmup: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Steps) != 3 {
		t.Fatalf("steps %d", len(seq.Steps))
	}
	for i := 0; i < 2; i++ {
		if seq.Steps[i].Delegators != 0 {
			t.Fatalf("warmup issue %d delegated", i)
		}
		if seq.Steps[i].ProbCorrect != seq.DirectProb {
			t.Fatalf("warmup prob %v != direct %v", seq.Steps[i].ProbCorrect, seq.DirectProb)
		}
	}
}

func TestLearningImprovesAccuracy(t *testing.T) {
	// SPG regime: after enough issues the community should decide far
	// better than direct voting, and better than in its early days.
	in := testInstance(t, 151, 0.30, 0.49, 4)
	seq, err := Run(in, Options{Issues: 120, Alpha: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	early := seq.MeanProb(1, 11)
	late := seq.MeanProb(110, 120)
	if late <= early {
		t.Fatalf("no learning: early %v late %v", early, late)
	}
	if late <= seq.DirectProb {
		t.Fatalf("late accuracy %v should beat direct %v", late, seq.DirectProb)
	}
}

func TestMisdelegationFallsOverTime(t *testing.T) {
	in := testInstance(t, 101, 0.30, 0.49, 6)
	seq, err := Run(in, Options{Issues: 200, Alpha: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var early, late float64
	for _, st := range seq.Steps[1:21] {
		early += st.Misdelegation
	}
	for _, st := range seq.Steps[180:200] {
		late += st.Misdelegation
	}
	if late >= early {
		t.Fatalf("misdelegation did not fall: early %v late %v", early/20, late/20)
	}
}

func TestRunDeterministic(t *testing.T) {
	in := testInstance(t, 41, 0.3, 0.6, 8)
	a, err := Run(in, Options{Issues: 10, Alpha: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, Options{Issues: 10, Alpha: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}

func TestMeanProbBounds(t *testing.T) {
	in := testInstance(t, 31, 0.3, 0.6, 10)
	seq, err := Run(in, Options{Issues: 5, Alpha: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if seq.MeanProb(-5, 100) == 0 {
		t.Fatal("clamped range should still average")
	}
	if seq.MeanProb(4, 2) != 0 {
		t.Fatal("empty range should be 0")
	}
}
