package adaptive_test

import (
	"fmt"

	"liquid/internal/adaptive"
	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

// Example runs a short adaptive sequence: the community's accuracy rises
// as track records accumulate.
func Example() {
	s := rng.New(5)
	p := make([]float64, 151)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		panic(err)
	}
	seq, err := adaptive.Run(in, adaptive.Options{Issues: 60, Alpha: 0.05, Seed: 7})
	if err != nil {
		panic(err)
	}
	early := seq.MeanProb(1, 11)
	late := seq.MeanProb(50, 60)
	fmt.Println("learns over time:", late > early)
	fmt.Println("ends above direct voting:", late > seq.DirectProb)
	// Output:
	// learns over time: true
	// ends above direct voting: true
}
