package dynamics

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func mustInstance(t *testing.T, top graph.Topology, p []float64) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBestResponseValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(0), nil)
	if _, err := BestResponse(in, Options{Alpha: 0.1}); !errors.Is(err, ErrInvalidDynamics) {
		t.Fatalf("err = %v", err)
	}
	in2 := mustInstance(t, graph.NewComplete(3), []float64{0.3, 0.4, 0.5})
	if _, err := BestResponse(in2, Options{Alpha: -1}); !errors.Is(err, ErrInvalidDynamics) {
		t.Fatalf("err = %v", err)
	}
}

func TestBestResponseNeverHarms(t *testing.T) {
	// The potential argument: starting from all-direct, the final
	// probability can never be below the direct-voting probability.
	s := rng.New(3)
	for trial := 0; trial < 5; trial++ {
		n := 10 + int(s.Uint64()%15)
		p := make([]float64, n)
		for i := range p {
			p[i] = 0.2 + 0.6*s.Float64()
		}
		in := mustInstance(t, graph.NewComplete(n), p)
		tr, err := BestResponse(in, Options{Alpha: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if tr.FinalProb < tr.InitialProb {
			t.Fatalf("trial %d: final %v below initial %v", trial, tr.FinalProb, tr.InitialProb)
		}
		pd, err := election.DirectProbabilityExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if tr.InitialProb != pd {
			t.Fatalf("initial prob %v should equal P^D %v", tr.InitialProb, pd)
		}
	}
}

func TestBestResponseConverges(t *testing.T) {
	// Common-interest potential game: must reach equilibrium.
	s := rng.New(7)
	p := make([]float64, 20)
	for i := range p {
		p[i] = 0.3 + 0.3*s.Float64()
	}
	in := mustInstance(t, graph.NewComplete(20), p)
	tr, err := BestResponse(in, Options{Alpha: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("dynamics did not converge in %d sweeps (%d moves)", tr.Sweeps, tr.Moves)
	}
	// The final profile must be a legal, acyclic, approved delegation
	// graph.
	if err := tr.Delegation.ValidateLocal(in, 0.02); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Delegation.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestBestResponseFindsExpert(t *testing.T) {
	// One expert among weak voters: equilibrium should delegate enough to
	// reach at least the expert's competency.
	p := []float64{0.95, 0.4, 0.4, 0.4, 0.4}
	in := mustInstance(t, graph.NewComplete(5), p)
	tr, err := BestResponse(in, Options{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.FinalProb < 0.95-1e-9 {
		t.Fatalf("equilibrium prob %v below expert level", tr.FinalProb)
	}
	if tr.Moves == 0 {
		t.Fatal("expected delegation moves")
	}
}

func TestBestResponseBeatsOrMatchesRandomMechanism(t *testing.T) {
	s := rng.New(11)
	p := make([]float64, 25)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	in := mustInstance(t, graph.NewComplete(25), p)
	tr, err := BestResponse(in, Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := election.EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: 0.05}, election.Options{
		Replications: 32, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.FinalProb < rnd.PM-0.02 {
		t.Fatalf("best response %v clearly below random mechanism %v", tr.FinalProb, rnd.PM)
	}
}

func TestBestResponseDirectIsEquilibriumWhenNobodyApproves(t *testing.T) {
	// Equal competencies: empty approval sets, zero moves.
	p := []float64{0.6, 0.6, 0.6}
	in := mustInstance(t, graph.NewComplete(3), p)
	tr, err := BestResponse(in, Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Moves != 0 || !tr.Converged {
		t.Fatalf("trace %+v", tr)
	}
	if tr.FinalProb != tr.InitialProb {
		t.Fatal("probability changed without moves")
	}
}
