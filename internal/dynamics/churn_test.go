package dynamics

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

// countdownCtx is a context whose Err becomes non-nil after a fixed number
// of Err calls, so per-period cancellation checks can be exercised
// mid-sequence deterministically.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(calls int) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(int64(calls))
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func churnInstance(t *testing.T, n int, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	return mustInstance(t, graph.NewComplete(n), p)
}

// TestChurnMatchesFromScratch is the bit-identity gate for the churn path:
// every step's incrementally-patched PM must equal from-scratch exact
// scoring of the step's Delegation snapshot.
func TestChurnMatchesFromScratch(t *testing.T) {
	in := churnInstance(t, 60, 11)
	steps, stats, err := Churn(context.Background(), in, ChurnOptions{Alpha: 0.02, Periods: 15, MovesPerPeriod: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 15 {
		t.Fatalf("got %d steps", len(steps))
	}
	for _, st := range steps {
		d := &core.DelegationGraph{Delegate: append([]int(nil), st.Delegation...)}
		res, err := d.Resolve()
		if err != nil {
			t.Fatalf("period %d: %v", st.Period, err)
		}
		want, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			t.Fatalf("period %d: %v", st.Period, err)
		}
		if math.Float64bits(st.PM) != math.Float64bits(want) {
			t.Fatalf("period %d: incremental PM %v != from-scratch %v", st.Period, st.PM, want)
		}
		if st.Delegators != d.NumDelegators() {
			t.Fatalf("period %d: delegator count %d != %d", st.Period, st.Delegators, d.NumDelegators())
		}
	}
	if stats.Patches == 0 {
		t.Fatalf("churn never patched the retained tree: %+v", stats)
	}
}

func TestChurnDeterminism(t *testing.T) {
	in := churnInstance(t, 40, 5)
	opts := ChurnOptions{Alpha: 0.05, Periods: 8, MovesPerPeriod: 3}
	a, _, err := Churn(context.Background(), in, opts, 21)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Churn(context.Background(), in, opts, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i].PM) != math.Float64bits(b[i].PM) {
			t.Fatalf("step %d: PM differs across equal-seed runs", i)
		}
		for v := range a[i].Delegation {
			if a[i].Delegation[v] != b[i].Delegation[v] {
				t.Fatalf("step %d: delegation differs across equal-seed runs", i)
			}
		}
	}
}

func TestChurnCancellation(t *testing.T) {
	in := churnInstance(t, 20, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Churn(ctx, in, ChurnOptions{Alpha: 0.05}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	// Mid-sequence: allow two period checks, fail on the third.
	steps, _, err := Churn(newCountdownCtx(2), in, ChurnOptions{Alpha: 0.05, Periods: 10}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sequence: err = %v", err)
	}
	if steps != nil {
		t.Fatalf("cancelled run returned %d steps", len(steps))
	}
}

func TestChurnValidation(t *testing.T) {
	in := churnInstance(t, 10, 3)
	if _, _, err := Churn(context.Background(), in, ChurnOptions{Alpha: -1}, 1); !errors.Is(err, ErrInvalidDynamics) {
		t.Fatalf("err = %v", err)
	}
	empty := mustInstance(t, graph.NewComplete(0), nil)
	if _, _, err := Churn(context.Background(), empty, ChurnOptions{}, 1); !errors.Is(err, ErrInvalidDynamics) {
		t.Fatalf("err = %v", err)
	}
}

// TestBestResponseFinalProbExact pins the scenario-backed evaluator to the
// from-scratch exact score of the returned profile — the invariant that
// keeps reproduced best-response traces byte-stable.
func TestBestResponseFinalProbExact(t *testing.T) {
	for _, seed := range []uint64{2, 13, 31} {
		in := churnInstance(t, 25, seed)
		tr, err := BestResponse(in, Options{Alpha: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Delegation.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(tr.FinalProb) != math.Float64bits(want) {
			t.Fatalf("seed %d: FinalProb %v != exact re-score %v", seed, tr.FinalProb, want)
		}
	}
}
