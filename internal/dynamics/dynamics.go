// Package dynamics implements rational delegation dynamics — the
// game-theoretic perspective of the liquid-democracy literature the paper
// cites (Bloembergen–Grossi–Lackner; Zhang–Grossi): each voter repeatedly
// best-responds by choosing the action (vote directly, or delegate to an
// approved neighbour) that maximizes the group's probability of deciding
// correctly, holding everyone else fixed.
//
// Because all voters share the same utility (a common-interest game), the
// group probability is an exact potential: every accepted move strictly
// increases it, so round-robin best response converges to a pure Nash
// equilibrium. Starting from all-direct voting, the equilibrium can only
// improve on direct voting — a game-theoretic route to positive gain.
//
// Scoring runs on election.Scenario, the retained incremental evaluator:
// consecutive candidate profiles differ by one delegation edge, so each
// candidate costs an O(log n) tree patch instead of a full weighted-majority
// DP. Scenario scores are bit-identical to ResolutionProbabilityExact, so
// the dynamics' accepted-move sequence — and every reproduced trace — is
// unchanged from the transient evaluator it replaced.
package dynamics

import (
	"context"
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// ErrInvalidDynamics reports invalid dynamics configuration.
var ErrInvalidDynamics = errors.New("dynamics: invalid configuration")

// Options configures a best-response run.
type Options struct {
	// Alpha is the approval margin restricting each voter's action set.
	Alpha float64
	// MaxSweeps bounds the number of full round-robin passes (default 50).
	MaxSweeps int
	// MinImprovement is the strict-improvement threshold for accepting a
	// move (default 1e-12); it guards against floating-point cycling.
	MinImprovement float64
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha < 0 {
		return o, fmt.Errorf("%w: negative alpha %v", ErrInvalidDynamics, o.Alpha)
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 50
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 1e-12
	}
	return o, nil
}

// Trace records a best-response run.
type Trace struct {
	// Converged reports whether a full sweep passed with no accepted move
	// (a pure Nash equilibrium of the common-interest game).
	Converged bool
	// Sweeps is the number of executed round-robin passes.
	Sweeps int
	// Moves is the total number of accepted strategy changes.
	Moves int
	// InitialProb and FinalProb are the group probabilities before (all
	// direct) and at the end.
	InitialProb float64
	FinalProb   float64
	// Delegation is the final strategy profile.
	Delegation *core.DelegationGraph
}

// BestResponse runs round-robin best-response dynamics from all-direct
// voting and returns the trace. The action set of voter i is {direct} plus
// every approved neighbour whose adoption keeps the delegation graph
// acyclic.
func BestResponse(in *core.Instance, opts Options) (*Trace, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty instance", ErrInvalidDynamics)
	}

	plan, err := election.NewPlan(in, election.Options{})
	if err != nil {
		return nil, err
	}
	sc, err := election.NewScenario(plan, core.NewDelegationGraph(n))
	if err != nil {
		return nil, err
	}
	current, err := sc.Score()
	if err != nil {
		return nil, err
	}
	tr := &Trace{InitialProb: current}
	d := sc.Delegation()

	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		tr.Sweeps++
		improvedThisSweep := false
		for i := 0; i < n; i++ {
			bestTarget := d.Delegate[i]
			bestProb := current
			// Candidate: vote directly.
			if d.Delegate[i] != core.NoDelegate {
				if err := sc.SetDelegate(i, core.NoDelegate); err != nil {
					return nil, err
				}
				if p, err := sc.Score(); err != nil {
					return nil, err
				} else if p > bestProb+opts.MinImprovement {
					bestProb, bestTarget = p, core.NoDelegate
				}
			}
			// Candidates: each approved neighbour that keeps acyclicity.
			// createsCycle walks j's chain, which stops at i before reading
			// d.Delegate[i], so the candidate left in place by the previous
			// iteration cannot affect the answer.
			for _, j := range in.ApprovalSet(i, opts.Alpha) {
				if createsCycle(d, i, j) {
					continue
				}
				if err := sc.SetDelegate(i, j); err != nil {
					return nil, err
				}
				p, err := sc.Score()
				if err != nil {
					return nil, err
				}
				if p > bestProb+opts.MinImprovement {
					bestProb, bestTarget = p, j
				}
			}
			if err := sc.SetDelegate(i, bestTarget); err != nil {
				return nil, err
			}
			if bestProb > current {
				current = bestProb
				tr.Moves++
				improvedThisSweep = true
			}
		}
		if !improvedThisSweep {
			tr.Converged = true
			break
		}
	}
	tr.FinalProb = current
	// Hand back a copy: the scenario owns its profile.
	tr.Delegation = &core.DelegationGraph{Delegate: append([]int(nil), d.Delegate...)}
	return tr, nil
}

// createsCycle reports whether setting i -> j would close a delegation
// cycle, i.e. whether i lies on j's current chain to its sink.
func createsCycle(d *core.DelegationGraph, i, j int) bool {
	for v := j; v != core.NoDelegate; v = d.Delegate[v] {
		if v == i {
			return true
		}
	}
	return false
}

// ChurnOptions configures a delegation-churn simulation.
type ChurnOptions struct {
	// Alpha is the approval margin restricting move targets.
	Alpha float64
	// Periods is the number of recorded steps (default 20).
	Periods int
	// MovesPerPeriod is the number of random re-delegations attempted per
	// period (default 5).
	MovesPerPeriod int
}

func (o ChurnOptions) withDefaults() (ChurnOptions, error) {
	if o.Alpha < 0 {
		return o, fmt.Errorf("%w: negative alpha %v", ErrInvalidDynamics, o.Alpha)
	}
	if o.Periods <= 0 {
		o.Periods = 20
	}
	if o.MovesPerPeriod <= 0 {
		o.MovesPerPeriod = 5
	}
	return o, nil
}

// ChurnStep is one recorded period of a churn run.
type ChurnStep struct {
	// Period is the step index (0-based).
	Period int
	// PM is the exact group probability of the profile after the period's
	// moves, scored incrementally.
	PM float64
	// Delegators counts delegating voters after the period.
	Delegators int
	// Delegation snapshots the profile (core.NoDelegate for direct), so a
	// verifier can re-score the step from scratch.
	Delegation []int
}

// Churn simulates sustained delegation churn: each period a few voters
// re-point — to a random approved neighbour when that keeps the graph
// acyclic, otherwise back to direct — and the resulting profile is scored
// through the retained incremental evaluator. It returns one step per
// period. Cancelling ctx aborts between periods with ctx's error.
//
// All randomness derives from seed; equal inputs give bit-identical step
// sequences. Each step's PM is bit-identical to from-scratch
// ResolutionProbabilityExact on the step's Delegation snapshot (the churn
// experiment re-verifies this per step). The returned stats are the
// retained tree's deterministic patch/rebuild counters over the whole run.
func Churn(ctx context.Context, in *core.Instance, opts ChurnOptions, seed uint64) ([]ChurnStep, prob.DeltaTreeStats, error) {
	var noStats prob.DeltaTreeStats
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, noStats, err
	}
	n := in.N()
	if n == 0 {
		return nil, noStats, fmt.Errorf("%w: empty instance", ErrInvalidDynamics)
	}
	plan, err := election.NewPlan(in, election.Options{})
	if err != nil {
		return nil, noStats, err
	}
	sc, err := election.NewScenario(plan, core.NewDelegationGraph(n))
	if err != nil {
		return nil, noStats, err
	}
	s := rng.New(seed)
	d := sc.Delegation()
	steps := make([]ChurnStep, 0, opts.Periods)
	for period := 0; period < opts.Periods; period++ {
		if err := ctx.Err(); err != nil {
			return nil, noStats, err
		}
		for m := 0; m < opts.MovesPerPeriod; m++ {
			i := int(s.IntN(n))
			j, ok := in.SampleApproved(i, opts.Alpha, s)
			if !ok || createsCycle(d, i, j) {
				j = core.NoDelegate
			}
			if err := sc.SetDelegate(i, j); err != nil {
				return nil, noStats, err
			}
		}
		pm, err := sc.Score()
		if err != nil {
			return nil, noStats, err
		}
		steps = append(steps, ChurnStep{
			Period:     period,
			PM:         pm,
			Delegators: d.NumDelegators(),
			Delegation: append([]int(nil), d.Delegate...),
		})
	}
	return steps, sc.TreeStats(), nil
}
