// Package dynamics implements rational delegation dynamics — the
// game-theoretic perspective of the liquid-democracy literature the paper
// cites (Bloembergen–Grossi–Lackner; Zhang–Grossi): each voter repeatedly
// best-responds by choosing the action (vote directly, or delegate to an
// approved neighbour) that maximizes the group's probability of deciding
// correctly, holding everyone else fixed.
//
// Because all voters share the same utility (a common-interest game), the
// group probability is an exact potential: every accepted move strictly
// increases it, so round-robin best response converges to a pure Nash
// equilibrium. Starting from all-direct voting, the equilibrium can only
// improve on direct voting — a game-theoretic route to positive gain.
package dynamics

import (
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
)

// ErrInvalidDynamics reports invalid dynamics configuration.
var ErrInvalidDynamics = errors.New("dynamics: invalid configuration")

// Options configures a best-response run.
type Options struct {
	// Alpha is the approval margin restricting each voter's action set.
	Alpha float64
	// MaxSweeps bounds the number of full round-robin passes (default 50).
	MaxSweeps int
	// MinImprovement is the strict-improvement threshold for accepting a
	// move (default 1e-12); it guards against floating-point cycling.
	MinImprovement float64
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha < 0 {
		return o, fmt.Errorf("%w: negative alpha %v", ErrInvalidDynamics, o.Alpha)
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 50
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 1e-12
	}
	return o, nil
}

// Trace records a best-response run.
type Trace struct {
	// Converged reports whether a full sweep passed with no accepted move
	// (a pure Nash equilibrium of the common-interest game).
	Converged bool
	// Sweeps is the number of executed round-robin passes.
	Sweeps int
	// Moves is the total number of accepted strategy changes.
	Moves int
	// InitialProb and FinalProb are the group probabilities before (all
	// direct) and at the end.
	InitialProb float64
	FinalProb   float64
	// Delegation is the final strategy profile.
	Delegation *core.DelegationGraph
}

// BestResponse runs round-robin best-response dynamics from all-direct
// voting and returns the trace. The action set of voter i is {direct} plus
// every approved neighbour whose adoption keeps the delegation graph
// acyclic.
func BestResponse(in *core.Instance, opts Options) (*Trace, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty instance", ErrInvalidDynamics)
	}

	d := core.NewDelegationGraph(n)
	current, err := profileProbability(in, d)
	if err != nil {
		return nil, err
	}
	tr := &Trace{InitialProb: current, Delegation: d}

	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		tr.Sweeps++
		improvedThisSweep := false
		for i := 0; i < n; i++ {
			bestTarget := d.Delegate[i]
			bestProb := current
			// Candidate: vote directly.
			if d.Delegate[i] != core.NoDelegate {
				d.Delegate[i] = core.NoDelegate
				if p, err := profileProbability(in, d); err != nil {
					return nil, err
				} else if p > bestProb+opts.MinImprovement {
					bestProb, bestTarget = p, core.NoDelegate
				}
			}
			// Candidates: each approved neighbour that keeps acyclicity.
			for _, j := range in.ApprovalSet(i, opts.Alpha) {
				if createsCycle(d, i, j) {
					continue
				}
				d.Delegate[i] = j
				p, err := profileProbability(in, d)
				if err != nil {
					return nil, err
				}
				if p > bestProb+opts.MinImprovement {
					bestProb, bestTarget = p, j
				}
			}
			d.Delegate[i] = bestTarget
			if bestProb > current {
				current = bestProb
				tr.Moves++
				improvedThisSweep = true
			}
		}
		if !improvedThisSweep {
			tr.Converged = true
			break
		}
	}
	tr.FinalProb = current
	return tr, nil
}

// profileProbability scores the current strategy profile exactly.
func profileProbability(in *core.Instance, d *core.DelegationGraph) (float64, error) {
	res, err := d.Resolve()
	if err != nil {
		return 0, err
	}
	return election.ResolutionProbabilityExact(in, res)
}

// createsCycle reports whether setting i -> j would close a delegation
// cycle, i.e. whether i lies on j's current chain to its sink.
func createsCycle(d *core.DelegationGraph, i, j int) bool {
	for v := j; v != core.NoDelegate; v = d.Delegate[v] {
		if v == i {
			return true
		}
	}
	return false
}
