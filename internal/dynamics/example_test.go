package dynamics_test

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/dynamics"
	"liquid/internal/graph"
)

// Example runs best-response delegation dynamics to a Nash equilibrium.
func Example() {
	p := []float64{0.95, 0.4, 0.4, 0.4, 0.4}
	in, err := core.NewInstance(graph.NewComplete(5), p)
	if err != nil {
		panic(err)
	}
	tr, err := dynamics.BestResponse(in, dynamics.Options{Alpha: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", tr.Converged)
	fmt.Println("equilibrium beats direct voting:", tr.FinalProb > tr.InitialProb)
	fmt.Printf("equilibrium P = %.2f\n", tr.FinalProb)
	// Output:
	// converged: true
	// equilibrium beats direct voting: true
	// equilibrium P = 0.95
}
