// Package walltime keeps wall-clock reads out of result-bearing packages.
// reproduce_output.txt is byte-identical across runs and worker counts only
// because nothing in the experiment/election/simulation stack observes real
// time; timing lives in the engine's telemetry events and in cmd/, which
// render to stderr. A time.Now in a result path is how "byte-identical"
// silently becomes "almost identical".
//
// The analyzer flags time.Now and time.Since in every internal package
// except the allowlist (internal/engine, whose events are telemetry by
// construction). cmd/ and examples/ are out of scope: entry points own the
// clock. Durations as *data* (time.Duration values, timeouts, backoff
// arithmetic) are fine everywhere; only reading the clock is restricted.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/time.Since in result-bearing internal packages",
	Run:  run,
}

// allowed lists internal packages that may read the clock: the engine emits
// elapsed-time telemetry on its event stream, which never reaches stdout or
// reproduce_output.txt.
var allowed = map[string]bool{
	"engine": true,
	// The lint tooling itself may time its own runs.
	"lint": true,
	// The telemetry layer owns spans and manifest timing; its reads never
	// feed back into results (that direction is telemflow's job to police).
	"telemetry": true,
	// The serving layer's clock reads are deadline mechanics and latency
	// telemetry; its evaluation results come from the election engine,
	// which stays in scope. telemflow still forbids the server reading
	// telemetry back, so a clock read cannot round-trip into a response.
	"server": true,
}

func inScope(path string) bool {
	if !analysis.InInternal(path) {
		return false
	}
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return !allowed[tail]
}

// restricted are the clock-reading functions of package time.
var restricted = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !restricted[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock read (time.%s) in a result-bearing package: byte-identical reproduction forbids observing real time here; emit timing from internal/engine telemetry or cmd/ instead", fn.Name())
			return true
		})
	}
	return nil
}
