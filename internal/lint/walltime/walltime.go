// Package walltime keeps wall-clock reads out of result-bearing packages.
// reproduce_output.txt is byte-identical across runs and worker counts only
// because nothing in the experiment/election/simulation stack observes real
// time; timing lives in the engine's telemetry events and in cmd/, which
// render to stderr. A time.Now in a result path is how "byte-identical"
// silently becomes "almost identical".
//
// The check has two layers. Syntactically, time.Now/time.Since/time.Until
// are flagged in every internal package except the allowlist (engine,
// telemetry, server, lint — packages whose clock reads are audited sinks
// that never feed results). Interprocedurally, every function that reads the
// clock — or transitively calls one that does — carries a ReadsClock fact,
// and a result-bearing package calling a clock-tainted function from an
// allowlisted package is flagged at the call site: the allowlist stops
// being a laundering hole the moment engine exports an elapsed-seconds
// helper and election starts calling it. Tainted calls between in-scope
// packages are not re-flagged; the direct read is already a finding at its
// source.
//
// A tainted call only counts as laundering when its signature lets the
// reading escape: a callee returning float64 or time.Duration hands the
// clock to its caller, while one returning nothing — or only opaque handles
// defined in its own package, like telemetry's *Span — keeps the timing
// inside the audited sink, where reading it back is telemflow's beat.
//
// cmd/ and examples/ are out of scope: entry points own the clock.
// Durations as *data* (time.Duration values, timeouts, backoff arithmetic)
// are fine everywhere; only reading the clock is restricted.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name:      "walltime",
	Doc:       "flags wall-clock reads in result-bearing packages, including reads laundered through allowlisted callees (ReadsClock facts)",
	Run:       run,
	FactTypes: []analysis.Fact{new(ReadsClock)},
}

// ReadsClock marks a function that observes real time, directly or through
// any internal callee.
type ReadsClock struct{}

// AFact marks ReadsClock as a fact.
func (*ReadsClock) AFact() {}

// allowed lists internal packages that may read the clock: the engine emits
// elapsed-time telemetry on its event stream, which never reaches stdout or
// reproduce_output.txt.
var allowed = map[string]bool{
	"engine": true,
	// The lint tooling itself may time its own runs.
	"lint": true,
	// The telemetry layer owns spans and manifest timing; its reads never
	// feed back into results (that direction is telemflow's job to police).
	"telemetry": true,
	// The serving layer's clock reads are deadline mechanics and latency
	// telemetry; its evaluation results come from the election engine,
	// which stays in scope. telemflow still forbids the server reading
	// telemetry back, so a clock read cannot round-trip into a response.
	"server": true,
}

func inScope(path string) bool {
	if !analysis.InInternal(path) {
		return false
	}
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return !allowed[tail]
}

// restricted are the clock-reading functions of package time.
var restricted = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !analysis.InInternal(pass.Path) {
		return nil
	}

	// Taint: which functions read the clock, directly or transitively. This
	// runs in every internal package — allowlisted ones included, since
	// that is where the facts that matter come from.
	tainted := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if callee, ok := pass.Info.ObjectOf(sel.Sel).(*types.Func); ok {
					if isClockRead(callee) {
						tainted[fn] = true
					} else if callee.Pkg() != nil && analysis.InInternal(callee.Pkg().Path()) {
						calls[fn] = append(calls[fn], callee)
					}
				}
				return true
			})
			if id, ok := fnIdentCalls(pass, fd.Body); ok {
				calls[fn] = append(calls[fn], id...)
			}
			if _, seen := tainted[fn]; !seen {
				tainted[fn] = false
			}
		}
	}
	taintedOf := func(fn *types.Func) bool {
		if t, ok := tainted[fn]; ok {
			return t
		}
		return pass.ImportObjectFact(fn, &ReadsClock{})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range calls {
			if tainted[fn] {
				continue
			}
			for _, c := range cs {
				if taintedOf(c) {
					tainted[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn, t := range tainted {
		if t && analysis.ObjectKey(fn) != "" {
			pass.ExportObjectFact(fn, &ReadsClock{})
		}
	}

	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			if isClockRead(fn) {
				pass.Reportf(sel.Pos(), "wall-clock read (time.%s) in a result-bearing package: byte-identical reproduction forbids observing real time here; emit timing from internal/engine telemetry or cmd/ instead", fn.Name())
				return true
			}
			// The interprocedural half: calling a clock-tainted function
			// that lives in an allowlisted package launders a read into a
			// result path with no time.Now in sight — but only when the
			// callee's results can carry the reading out.
			if fn.Pkg() != nil && analysis.InInternal(fn.Pkg().Path()) && !inScope(fn.Pkg().Path()) && leaksTime(fn) && taintedOf(fn) {
				pass.Reportf(sel.Pos(), "call to %s.%s launders a wall-clock read into a result-bearing package (ReadsClock fact): consume timing where it is produced, or move this call to cmd/", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}

// fnIdentCalls lists same-package callees invoked by plain identifier.
func fnIdentCalls(pass *analysis.Pass, body ast.Node) ([]*types.Func, bool) {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if fn, ok := pass.Info.ObjectOf(id).(*types.Func); ok {
				out = append(out, fn)
			}
		}
		return true
	})
	return out, len(out) > 0
}

// isClockRead reports whether fn is one of package time's clock readers.
func isClockRead(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" && restricted[fn.Name()]
}

// leaksTime reports whether fn's results could carry a clock reading back to
// the caller. Opaque handles defined in the callee's own package (a
// telemetry *Span) and bare errors cannot; numbers, durations, and anything
// imported can.
func leaksTime(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return true
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if leakableType(res.At(i).Type(), fn.Pkg()) {
			return true
		}
	}
	return false
}

func leakableType(t types.Type, owner *types.Package) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return leakableType(t.Elem(), owner)
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return obj.Name() != "error" // universe types: error is opaque
		}
		return obj.Pkg() != owner
	case *types.Basic:
		return true
	default:
		return true // slices, funcs, interfaces: conservatively leakable
	}
}
