package walltime_test

import (
	"testing"

	"liquid/internal/lint/lintest"
	"liquid/internal/lint/walltime"
)

func TestWallTime(t *testing.T) {
	lintest.Run(t, "testdata", walltime.Analyzer)
}
