// Package summary exercises the interprocedural half of walltime: it is
// result-bearing and never mentions time, but it calls into the allowlisted
// engine package, so only the ReadsClock facts can tell which of those calls
// launder a clock read.
package summary

import (
	"liquid/internal/election"
	"liquid/internal/engine"
)

// Span picks up real time through the allowlisted engine package.
func Span(f func()) float64 {
	return engine.Telemetry(f) // want `launders a wall-clock read`
}

// Indirect launders through a callee that is itself only transitively
// tainted.
func Indirect(f func()) float64 {
	return engine.Wrapped(f) // want `launders a wall-clock read`
}

// Named calls an untainted engine function: no finding.
func Named() string {
	return engine.Describe()
}

// Reuse calls a clock-tainted function from another in-scope package; the
// read is flagged at its source in election, not re-flagged here.
func Reuse() float64 {
	return election.Timed().Seconds()
}

// Spans uses the write-only span idiom: the callees read the clock, but
// their signatures return only an opaque engine handle (or nothing), so the
// timing cannot reach this package's results.
func Spans(f func()) {
	sp := engine.StartSpan()
	defer sp.Finish()
	f()
}
