// Package election is a walltime fixture: a result-bearing package must not
// read the clock, but may carry durations as data.
package election

import "time"

// Timed reads the wall clock twice.
func Timed() time.Duration {
	start := time.Now() // want `wall-clock read \(time\.Now\)`
	work()
	return time.Since(start) // want `wall-clock read \(time\.Since\)`
}

// Budget treats a duration as plain data, which is fine anywhere.
func Budget(timeout time.Duration) bool {
	return timeout > time.Second
}

// Ignored shows the justified-suppression escape hatch.
func Ignored() time.Time {
	//lint:ignore walltime debug-only stamp, never rendered into results
	return time.Now()
}

func work() {}
