// Package engine is on the walltime allowlist: its elapsed-time telemetry
// never reaches reproducible output.
package engine

import "time"

// Telemetry times a span, legally.
func Telemetry(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
