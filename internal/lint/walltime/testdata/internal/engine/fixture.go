// Package engine is on the walltime allowlist: its elapsed-time telemetry
// never reaches reproducible output.
package engine

import "time"

// Telemetry times a span, legally.
func Telemetry(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// Wrapped is clock-tainted only transitively, through Telemetry; its
// ReadsClock fact is what dependents are judged by.
func Wrapped(f func()) float64 {
	return Telemetry(f)
}

// Describe never touches the clock: calling it from a result-bearing
// package is fine.
func Describe() string {
	return "engine"
}

// Span is an opaque timing handle; the clock readings it carries never
// leave the engine package through its API.
type Span struct {
	start time.Time
}

// StartSpan reads the clock but returns only the opaque handle: calling it
// from a result-bearing package is not laundering.
func StartSpan() *Span {
	return &Span{start: time.Now()}
}

// Finish reads the clock and returns nothing.
func (s *Span) Finish() {
	_ = time.Since(s.start)
}
