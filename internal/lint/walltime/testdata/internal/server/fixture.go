// Package server is on the walltime allowlist: the serving layer reads the
// clock for deadline budgets and latency histograms, never for results.
package server

import "time"

// DeadlineBudget computes the remaining budget of a deadline, legally.
func DeadlineBudget(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// Latency times a request, legally.
func Latency(handle func()) float64 {
	start := time.Now()
	handle()
	return time.Since(start).Seconds()
}
