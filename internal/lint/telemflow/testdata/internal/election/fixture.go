// Package election is a telemflow fixture: a result-bearing package may
// write telemetry all it wants but must never read it back.
package election

import "liquid/internal/telemetry"

var (
	hits   = telemetry.NewCounter("election/hits")
	misses = telemetry.NewCounter("election/misses")
)

// Score instruments legally: registration and writes only.
func Score(hit bool) float64 {
	if hit {
		hits.Inc()
		return 1
	}
	misses.Add(1)
	return 0
}

// AdaptiveScore is the violation telemflow exists for: branching a result
// on a scheduling-dependent hit count.
func AdaptiveScore() float64 {
	if hits.Load() > misses.Load() { // want `telemetry read \(Counter\.Load\)` `telemetry read \(Counter\.Load\)`
		return 1
	}
	return 0
}

// DumpState bulk-reads the registry, also forbidden here.
func DumpState() uint64 {
	snap := telemetry.Default.Snapshot() // want `telemetry read \(Registry\.Snapshot\)`
	return snap.Counter("election/hits") // want `telemetry read \(Snapshot\.Counter\)`
}

// RegisterMore uses the get-or-create factory, which registers rather than
// reads and stays legal.
func RegisterMore() {
	telemetry.Default.Counter("election/extra").Inc()
}

// Ignored shows the justified-suppression escape hatch.
func Ignored() uint64 {
	//lint:ignore telemflow debug assertion, value never reaches a table
	return hits.Load()
}
