// Package telemetry is the telemflow fixture's stand-in for the real
// metrics layer: same type and method names, placed under internal/ so the
// analyzer's suffix-based package matching fires exactly as it does on
// liquid/internal/telemetry.
package telemetry

// Counter is a write-mostly metric.
type Counter struct{ v uint64 }

// Inc is a write and is legal everywhere.
func (c *Counter) Inc() { c.v++ }

// Add is a write and is legal everywhere.
func (c *Counter) Add(d uint64) { c.v += d }

// Load is the forbidden read.
func (c *Counter) Load() uint64 { return c.v }

// Gauge is a last-value metric.
type Gauge struct{ v float64 }

// Set is a write.
func (g *Gauge) Set(v float64) { g.v = v }

// Load is the forbidden read.
func (g *Gauge) Load() float64 { return g.v }

// Histogram is a bucketed metric.
type Histogram struct{ count uint64 }

// Observe is a write.
func (h *Histogram) Observe(float64) { h.count++ }

// HistogramSnapshot is Histogram's exported state.
type HistogramSnapshot struct{ Count uint64 }

// Snapshot is the forbidden read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{Count: h.count}
}

// Registry hands out metrics by name.
type Registry struct {
	counters map[string]*Counter
}

// Default is the package-level registry.
var Default = &Registry{}

// Counter is get-or-create registration, not a read: legal everywhere.
func (r *Registry) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Snapshot is the forbidden bulk read.
func (r *Registry) Snapshot() Snapshot {
	// The telemetry package itself may read freely (it IS the read API).
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Load()})
	}
	return s
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// Snapshot is an exported registry state.
type Snapshot struct{ Counters []CounterValue }

// Counter is a value lookup on exported state: a read, forbidden outside
// the allowlist (unlike Registry.Counter, which registers).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// NewCounter registers on Default.
func NewCounter(name string) *Counter { return Default.Counter(name) }
