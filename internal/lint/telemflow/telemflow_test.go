package telemflow_test

import (
	"testing"

	"liquid/internal/lint/lintest"
	"liquid/internal/lint/telemflow"
)

func TestTelemFlow(t *testing.T) {
	lintest.Run(t, "testdata", telemflow.Analyzer)
}
