// Package telemflow keeps telemetry write-only with respect to results.
// The observability layer (internal/telemetry) is attached to every hot
// path — caches count hits, kernels count crossover decisions, the engine
// times experiments — and that is only safe because the instrumented code
// never looks at the numbers: a branch on a hit rate or a span duration
// would let scheduling-dependent telemetry leak into tables that must stay
// byte-identical across worker counts and across -tags liquidnotelemetry
// builds.
//
// The analyzer flags calls to the read-side methods of telemetry types
// (Counter.Load, Gauge.Load, Histogram.Snapshot, Registry.Snapshot,
// Snapshot.Counter) in every internal package except the telemetry package
// itself and the lint tree. Writes (Inc, Add, Set, Observe, StartSpan) and
// registration (Registry.Counter and friends) are fine everywhere — the
// whole point is that instrumenting is free. cmd/ and _test.go files are
// out of scope: entry points and tests are exactly where reading belongs.
package telemflow

import (
	"go/ast"
	"go/types"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the telemflow check.
var Analyzer = &analysis.Analyzer{
	Name: "telemflow",
	Doc:  "flags telemetry reads (Load/Snapshot) in result-bearing internal packages",
	Run:  run,
}

// allowed lists internal package-tail roots that may read telemetry: the
// telemetry package owns the read API, and the lint tree analyzes it.
var allowed = map[string]bool{
	"telemetry": true,
	"lint":      true,
}

func inScope(path string) bool {
	if !analysis.InInternal(path) {
		return false
	}
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return !allowed[tail]
}

// readMethods maps telemetry receiver type name -> forbidden method names.
// Registry.Counter/Gauge/Histogram are get-or-create factories and stay
// legal; Snapshot.Counter is a value lookup and does not.
var readMethods = map[string]map[string]bool{
	"Counter":   {"Load": true},
	"Gauge":     {"Load": true},
	"Histogram": {"Snapshot": true},
	"Registry":  {"Snapshot": true},
	"Snapshot":  {"Counter": true},
}

// telemetryPath reports whether an import path is the telemetry package,
// by suffix so fixture modules under testdata scope identically to the
// real tree.
func telemetryPath(path string) bool {
	return path == "internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
}

// receiverTypeName resolves a method's receiver to its named telemetry
// type, or "" when the method is not a telemetry method.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !telemetryPath(obj.Pkg().Path()) {
		return ""
	}
	return obj.Name()
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			recv := receiverTypeName(fn)
			if recv == "" || !readMethods[recv][fn.Name()] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "telemetry read (%s.%s) in a result-bearing package: telemetry is write-only here so metrics can never influence results; read registries from cmd/ entry points or tests instead", recv, fn.Name())
			return true
		})
	}
	return nil
}
