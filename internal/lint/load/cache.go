package load

// The analysis cache: one JSON file per package holding the diagnostics,
// live-suppression counts, and exported facts of its last analysis,
// guarded by a key derived from the package's content hash and the keys of
// its dependencies. Every failure mode — missing file, unreadable JSON,
// key mismatch after a source edit, an entry written by a different
// analyzer suite — degrades to a cache miss and a clean re-analysis, never
// an error: a cache must not be able to make lint wrong, only slow.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"liquid/internal/lint/analysis"
)

// Entry is one package's cached analysis.
type Entry struct {
	// Key guards the entry: it must equal the driver-computed key for the
	// package (content hash + dependency keys + suite salt) to be usable.
	Key          string                `json:"key"`
	Diagnostics  []analysis.Diagnostic `json:"diagnostics"`
	Suppressions map[string]int        `json:"suppressions,omitempty"`
	// Facts holds the package's exported facts as produced by
	// analysis.FactStore.EncodePackage.
	Facts json.RawMessage `json:"facts,omitempty"`
}

// Cache stores entries under a directory, one file per package.
type Cache struct {
	dir string
}

// NewCache returns a cache rooted at dir, creating it if needed. An empty
// dir disables caching: every Get misses and every Put is dropped.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return &Cache{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("load: creating cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// entryPath flattens an import path into a file name.
func (c *Cache) entryPath(importPath string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(importPath, "/", "_")+".json")
}

// Get returns the cached entry for importPath if it exists, parses, and
// carries the expected key. Anything else — corrupt JSON, a stale key after
// a source edit, a missing file — is reported as a miss so the caller falls
// back to re-analysis.
func (c *Cache) Get(importPath, key string) (*Entry, bool) {
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(importPath))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Key != key {
		return nil, false
	}
	// Rebuild the display positions dropped by the Diagnostic JSON schema.
	for i := range e.Diagnostics {
		d := &e.Diagnostics[i]
		d.Pos = token.Position{Filename: d.File, Line: d.Line, Column: d.Column}
	}
	return &e, true
}

// Put stores the entry for importPath. Write failures are returned but are
// safe to ignore: the cache is an accelerator, not a source of truth.
func (c *Cache) Put(importPath string, e *Entry) error {
	if c.dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return err
	}
	tmp := c.entryPath(importPath) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.entryPath(importPath))
}

// Keys computes the cache key of every package in pkgs (which must be in
// dependency order, as List returns them): a hash over the suite salt, the
// package's content sum, and the keys of its module-local dependencies, so
// an edit anywhere in a package's dependency cone invalidates it.
func Keys(pkgs []*Package, salt string) map[string]string {
	keys := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		h := sha256.New()
		fmt.Fprintf(h, "salt %s\npkg %s\nsum %s\n", salt, p.ImportPath, p.Sum)
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			// A dependency outside pkgs (pattern-restricted run) hashes as
			// absent; its facts are absent too, consistently.
			fmt.Fprintf(h, "dep %s %s\n", dep, keys[dep])
		}
		keys[p.ImportPath] = hex.EncodeToString(h.Sum(nil))
	}
	return keys
}
