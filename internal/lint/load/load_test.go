package load_test

import (
	"strings"
	"testing"

	"liquid/internal/lint/load"
)

// TestPackagesMultiPackageModule loads a module where one root imports
// another: both come back type-checked, dependency export data resolves,
// and roots are sorted by import path.
func TestPackagesMultiPackageModule(t *testing.T) {
	pkgs, err := load.Packages("testdata/multi", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].ImportPath != "fixture/a" || pkgs[1].ImportPath != "fixture/b" {
		t.Fatalf("roots out of order: %s, %s", pkgs[0].ImportPath, pkgs[1].ImportPath)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: unexpected type errors: %v", p.ImportPath, p.TypeErrors)
		}
		if len(p.Files) == 0 || p.Types == nil || p.Info == nil || p.Fset == nil {
			t.Fatalf("%s: incomplete package: %+v", p.ImportPath, p)
		}
	}
	// The cross-package reference must have resolved through export data.
	b := pkgs[1]
	if b.Types.Scope().Lookup("Doubled") == nil {
		t.Fatal("fixture/b lost its Doubled declaration")
	}
}

// TestPackagesDefaultPattern: omitting patterns defaults to ./... .
func TestPackagesDefaultPattern(t *testing.T) {
	pkgs, err := load.Packages("testdata/multi")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}

// TestPackagesCorruptModule pins the hard-error path: a module whose
// go.mod does not parse must fail loudly (a silent nil would let lint
// report "clean" on a tree it never saw).
func TestPackagesCorruptModule(t *testing.T) {
	_, err := load.Packages("../lintest/testdata/corrupt", "./...")
	if err == nil {
		t.Fatal("corrupt go.mod loaded")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Fatalf("err = %v, want a go list failure", err)
	}
}

// TestPackagesParseError: a file that fails go/parser is a hard error too.
func TestPackagesParseError(t *testing.T) {
	_, err := load.Packages("testdata/parseerr", "./...")
	if err == nil {
		t.Fatal("unparseable package loaded")
	}
}

// TestPackagesTypeErrorIsLoud: a package that fails to compile (undefined
// identifier) is reported by go list as a package error and must fail the
// load — lint must never report "clean" on a tree it could not check. The
// error names the culprit so the failure is actionable.
func TestPackagesTypeErrorIsLoud(t *testing.T) {
	_, err := load.Packages("testdata/typeerr", "./...")
	if err == nil {
		t.Fatal("uncompilable package loaded silently")
	}
	if !strings.Contains(err.Error(), "undefinedIdentifier") {
		t.Fatalf("err = %v, want the undefined identifier named", err)
	}
}

// TestPackagesMissingDir: a directory that is not inside any module errors.
func TestPackagesMissingDir(t *testing.T) {
	if _, err := load.Packages("testdata/nosuchdir", "./..."); err == nil {
		t.Fatal("missing directory accepted")
	}
}
