// Package load builds type-checked package targets for the lint analyzers
// using only the standard library: package discovery and dependency export
// data come from `go list -deps -export -json`, source files are parsed with
// go/parser, and type checking uses the gc importer fed with the export data
// the go command already produced. This is a deliberately small stand-in for
// golang.org/x/tools/go/packages, which the module does not depend on.
//
// Packages come back in dependency order (imports before importers), which
// is what lets the analysis framework's facts flow across package
// boundaries: by the time a dependent package is analyzed, every fact its
// dependencies exported is already in the store. Each package also carries
// a content hash (Sum) so drivers can key incremental caches on exactly
// the bytes that were analyzed.
package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one listed package. Syntax and type information are populated
// lazily by Load, so a driver with a warm cache can skip parsing and
// type-checking entirely for unchanged packages.
type Package struct {
	ImportPath string
	Dir        string
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns. They can be analyzed for facts but are not
	// lint-reporting roots.
	DepOnly bool
	// Imports holds the package's direct imports, restricted to packages
	// that are part of the same List result (module-local edges); stdlib
	// imports are dropped — no facts ever come from there.
	Imports []string
	// GoFiles are the absolute paths of the non-test Go sources.
	GoFiles []string
	// Sum is a hex SHA-256 over the package's file names and contents: the
	// cache key ingredient that changes exactly when the analyzed bytes do.
	Sum string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-checker complaints (missing export
	// data for an import, for example). Analyzers still run; the driver
	// surfaces these so a broken load is never mistaken for a clean lint.
	TypeErrors []error

	loaded bool
	ld     *loader
}

// loader shares one FileSet and one export-data importer across the
// packages of a List result.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// List discovers the packages matching patterns (resolved relative to dir)
// without parsing or type-checking them; call Load on each package that
// actually needs analysis. The result contains the matched roots plus every
// module-local (non-stdlib) dependency, in dependency order. An error in a
// root package is a hard error — lint must never report "clean" on a tree
// it could not see.
func List(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	byPath := make(map[string]*listedPackage, len(listed))
	var keep []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		byPath[lp.ImportPath] = lp
		if lp.Standard {
			continue
		}
		if !lp.DepOnly && lp.Error != nil {
			return nil, fmt.Errorf("load: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		keep = append(keep, lp)
	}

	fset := token.NewFileSet()
	ld := &loader{fset: fset, imp: newExportImporter(fset, exports)}
	pkgs := make(map[string]*Package, len(keep))
	for _, lp := range keep {
		p := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			DepOnly:    lp.DepOnly,
			ld:         ld,
		}
		for _, name := range lp.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			p.GoFiles = append(p.GoFiles, path)
		}
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok && !dep.Standard {
				p.Imports = append(p.Imports, imp)
			}
		}
		sort.Strings(p.Imports)
		if p.Sum, err = contentSum(p.GoFiles); err != nil {
			return nil, fmt.Errorf("load: hashing %s: %w", lp.ImportPath, err)
		}
		pkgs[lp.ImportPath] = p
	}
	return topoSort(pkgs), nil
}

// topoSort orders packages dependencies-first, ties broken by import path
// so the order is deterministic.
func topoSort(pkgs map[string]*Package) []*Package {
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p, ok := pkgs[path]
		if !ok || state[path] != 0 {
			// Import cycles cannot occur in compiled Go; a revisit means
			// the package is already placed (or being placed) and can be
			// skipped.
			return
		}
		state[path] = 1
		for _, imp := range p.Imports {
			visit(imp)
		}
		state[path] = 2
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// contentSum hashes file names and contents.
func contentSum(files []string) (string, error) {
	h := sha256.New()
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", filepath.Base(f), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Load parses and type-checks the package if it has not been already.
func (p *Package) Load() error {
	if p.loaded {
		return nil
	}
	p.loaded = true
	for _, path := range p.GoFiles {
		f, err := parser.ParseFile(p.ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("load: parse %s: %w", path, err)
		}
		p.Files = append(p.Files, f)
	}
	p.Fset = p.ld.fset
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: p.ld.imp,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// Type-check errors are collected, not fatal: analyzers degrade
	// gracefully on partial information.
	tpkg, _ := conf.Check(p.ImportPath, p.ld.fset, p.Files, p.Info)
	p.Types = tpkg
	return nil
}

// Packages loads and type-checks the root packages matching patterns,
// resolved relative to dir (any directory inside the target module), in
// dependency order. It is List plus an eager Load of every root.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		if err := p.Load(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// goList runs `go list -e -deps -export -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v in %s: %w\n%s", patterns, dir, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, falling back through the gc importer's binary
// export-data reader.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}
