// Package load builds type-checked package targets for the lint analyzers
// using only the standard library: package discovery and dependency export
// data come from `go list -deps -export -json`, source files are parsed with
// go/parser, and type checking uses the gc importer fed with the export data
// the go command already produced. This is a deliberately small stand-in for
// golang.org/x/tools/go/packages, which the module does not depend on.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked root package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds non-fatal type-checker complaints (missing export
	// data for an import, for example). Analyzers still run; the driver
	// surfaces these so a broken load is never mistaken for a clean lint.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns, resolved
// relative to dir (any directory inside the target module).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			if lp.Error != nil {
				return nil, fmt.Errorf("load: package %s: %s", lp.ImportPath, lp.Error.Err)
			}
			roots = append(roots, lp)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, lp := range roots {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -e -deps -export -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v in %s: %w\n%s", patterns, dir, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses and type-checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Type-check errors are collected, not fatal: analyzers degrade
	// gracefully on partial information.
	tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, falling back through the gc importer's binary
// export-data reader.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}
