// Package fix parses but does not type-check: undefinedIdentifier has no
// definition. The loader must collect the complaint and still hand back a
// target rather than aborting the whole lint run.
package fix

func broken() int {
	return undefinedIdentifier
}
