// Package b imports a sibling package, exercising the export-data importer
// (go list -export handing the gc importer its .a files).
package b

import "fixture/a"

// Doubled uses the dependency so the import cannot be elided.
func Doubled() int { return 2 * a.Answer() }
