// Package a is the dependency in the multi-package fixture.
package a

// Answer is imported by package b, so b's type check needs a's export data.
func Answer() int { return 42 }
