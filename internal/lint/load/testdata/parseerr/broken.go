// Package broken does not parse: the brace below never closes.
package broken

func dangling() {
