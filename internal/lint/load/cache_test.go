package load_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"liquid/internal/lint/analysis"
	"liquid/internal/lint/load"
)

func testEntry(key string) *load.Entry {
	return &load.Entry{
		Key: key,
		Diagnostics: []analysis.Diagnostic{{
			Analyzer: "fake", File: "x.go", Line: 3, Column: 1, Message: "finding",
		}},
		Suppressions: map[string]int{"fake": 1},
		Facts:        json.RawMessage(`[{"object":"F","type":"fake.Mark","data":{}}]`),
	}
}

// TestCacheRoundTrip: a stored entry comes back intact, with display
// positions rebuilt so cached diagnostics print like fresh ones.
func TestCacheRoundTrip(t *testing.T) {
	c, err := load.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("liquid/internal/graph", testEntry("k1")); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get("liquid/internal/graph", "k1")
	if !ok {
		t.Fatal("fresh entry missed")
	}
	if len(e.Diagnostics) != 1 || e.Diagnostics[0].Pos.Filename != "x.go" || e.Diagnostics[0].Pos.Line != 3 {
		t.Fatalf("diagnostic positions not rebuilt: %+v", e.Diagnostics)
	}
	if e.Suppressions["fake"] != 1 {
		t.Fatalf("suppressions lost: %v", e.Suppressions)
	}
}

// TestCacheStaleKeyMisses: after a source edit the driver-computed key
// changes, and the old entry must read as a miss — not an error, and
// certainly not a hit.
func TestCacheStaleKeyMisses(t *testing.T) {
	c, err := load.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("liquid/internal/graph", testEntry("before-edit")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("liquid/internal/graph", "after-edit"); ok {
		t.Fatal("stale entry served as a hit")
	}
}

// TestCacheCorruptEntryMisses: a truncated or garbage entry file degrades
// to a miss (clean re-analysis), never an error.
func TestCacheCorruptEntryMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := load.NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("liquid/internal/graph", testEntry("k1")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry in place.
	path := filepath.Join(dir, "liquid_internal_graph.json")
	if err := os.WriteFile(path, []byte(`{"key":"k1","diagnostics":[{broken`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("liquid/internal/graph", "k1"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
}

// TestCacheMissingEntryMisses: a package never analyzed before (no facts,
// no entry) is a plain miss.
func TestCacheMissingEntryMisses(t *testing.T) {
	c, err := load.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("liquid/internal/never", "k"); ok {
		t.Fatal("missing entry served as a hit")
	}
}

// TestCacheDisabled: the zero-dir cache misses and swallows puts, so the
// driver code needs no branches.
func TestCacheDisabled(t *testing.T) {
	c, err := load.NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("p", testEntry("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("p", "k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

// TestCacheEmptyFactsRoundTrip: packages with no facts at all (Facts nil)
// round-trip without error — decoding nothing is a valid fast path.
func TestCacheEmptyFactsRoundTrip(t *testing.T) {
	c, err := load.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &load.Entry{Key: "k"}
	if err := c.Put("liquid/internal/bare", e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("liquid/internal/bare", "k")
	if !ok {
		t.Fatal("bare entry missed")
	}
	if len(got.Facts) != 0 || len(got.Diagnostics) != 0 {
		t.Fatalf("bare entry not bare: %+v", got)
	}
}

// TestKeysPropagateThroughDeps: editing a dependency changes the dependent
// package's key even when the dependent's own bytes are unchanged — the
// facts it imported may differ.
func TestKeysPropagateThroughDeps(t *testing.T) {
	a1 := &load.Package{ImportPath: "m/a", Sum: "s-a"}
	b := &load.Package{ImportPath: "m/b", Sum: "s-b", Imports: []string{"m/a"}}
	before := load.Keys([]*load.Package{a1, b}, "salt")

	a2 := &load.Package{ImportPath: "m/a", Sum: "s-a-edited"}
	after := load.Keys([]*load.Package{a2, b}, "salt")

	if before["m/a"] == after["m/a"] {
		t.Fatal("dependency edit did not change its own key")
	}
	if before["m/b"] == after["m/b"] {
		t.Fatal("dependency edit did not propagate to the dependent's key")
	}
	// Different suite salt invalidates everything.
	salted := load.Keys([]*load.Package{a1, b}, "other-salt")
	if salted["m/a"] == before["m/a"] {
		t.Fatal("salt change did not rotate keys")
	}
}
