package floatacc_test

import (
	"testing"

	"liquid/internal/lint/floatacc"
	"liquid/internal/lint/lintest"
)

func TestFloatAcc(t *testing.T) {
	lintest.Run(t, "testdata", floatacc.Analyzer)
}
