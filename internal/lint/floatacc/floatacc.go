// Package floatacc polices float64 accumulation in the numeric kernels.
// The probability stack sums thousands of per-voter masses and per-trial
// outcomes; naive `s += x` in a loop loses low-order bits in
// magnitude-dependent, refactor-sensitive ways. The repository keeps its
// numerics stable by funneling reductions through the compensated kernels —
// prob.Sum / prob.Accumulator (Kahan–Babuška–Neumaier) for plain sums,
// prob.Summary (Welford) for moments — so a reordering refactor can never
// shift a reported table value.
//
// The analyzer flags `+=` and `-=` on float operands inside any for/range
// loop in internal/prob and internal/recycle. Single compensated updates
// outside loops (Welford's own interior, the Neumaier correction term) are
// not accumulation and stay unflagged.
package floatacc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the floatacc check.
var Analyzer = &analysis.Analyzer{
	Name: "floatacc",
	Doc:  "flags naive float64 += accumulation loops in internal/prob, internal/recycle, internal/election, and internal/scale",
	Run:  run,
}

var scope = map[string]bool{
	"prob":     true,
	"recycle":  true,
	"election": true,
	"scale":    true,
}

func inScope(path string) bool {
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return scope[tail]
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			s, ok := n.(*ast.AssignStmt)
			if !ok || (s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN) {
				return true
			}
			if !insideLoop(stack) {
				return true
			}
			for _, lhs := range s.Lhs {
				if isFloat(pass.TypeOf(lhs)) {
					pass.Reportf(s.TokPos, "naive float accumulation in a loop drifts with evaluation order; reduce through prob.Sum / prob.Accumulator (compensated) or prob.Summary (Welford), or annotate with //lint:ignore floatacc <reason>")
					break
				}
			}
			return true
		})
	}
	return nil
}

// insideLoop reports whether the innermost function on the stack contains a
// loop enclosing the node: a += beneath a for/range that belongs to the same
// function literal/declaration.
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
