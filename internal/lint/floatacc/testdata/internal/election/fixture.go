// Package election is outside floatacc's scope; its reductions answer to
// maporder/walltime instead.
package election

// Naive would be flagged in internal/prob or internal/recycle.
func Naive(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
