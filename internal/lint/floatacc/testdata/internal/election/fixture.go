// Package election is inside floatacc's scope: its moment and aggregation
// loops feed reproduced tables, so naive accumulation is flagged exactly as
// in internal/prob.
package election

// moments mimics ResolutionMoments before its Accumulator port.
func moments(ws []float64, ps []float64) (mean, variance float64) {
	for i, w := range ws {
		p := ps[i]
		mean += w * p         // want `naive float accumulation`
		variance += w * w * p // want `naive float accumulation`
	}
	return mean, variance
}

// aggregate mimics the EvaluateMechanism replication averages.
func aggregate(outs []float64) float64 {
	var meanSinks float64
	for _, o := range outs {
		meanSinks += o // want `naive float accumulation`
	}
	return meanSinks / float64(len(outs))
}

// counts stay integer and unflagged.
func counts(outs []int) int {
	s := 0
	for _, o := range outs {
		s += o
	}
	return s
}

// tinyFanIn shows the justified-suppression escape hatch used by
// MultiDelegationProbability's per-voter delegate loop.
func tinyFanIn(ws []float64) float64 {
	var total float64
	for _, w := range ws {
		//lint:ignore floatacc delegate fan-ins are tiny; compensating would perturb sampled values
		total += w
	}
	return total
}
