// Package prob is a floatacc fixture: naive float accumulation in loops is
// flagged; integer sums and single compensated updates are not.
package prob

// Naive is the classic drifting reduction.
func Naive(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want `naive float accumulation`
	}
	return s
}

// NaiveSub drifts the same way in the other direction.
func NaiveSub(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s -= x // want `naive float accumulation`
	}
	return s
}

// IntSum commutes exactly; integers are fine.
func IntSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// welford mimics prob.Summary: the interior updates are not loop
// accumulation and must stay unflagged.
type welford struct {
	n    int
	mean float64
	m2   float64
}

// Add is a single compensated update outside any loop.
func (w *welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddAll loops but accumulates through the kernel, not with +=.
func AddAll(w *welford, xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// Ignored shows the justified-suppression escape hatch.
func Ignored(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		//lint:ignore floatacc two-element sums cannot drift
		s += x
	}
	return s
}
