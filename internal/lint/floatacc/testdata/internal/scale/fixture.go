// Package scale is inside floatacc's scope: the streamed fold's sufficient
// statistics certify million-voter intervals, where naive accumulation error
// grows with n and silently eats the certified half-width.
package scale

// chunkMoments mimics a chunk fold that bypasses prob.SumStats.
func chunkMoments(ws []float64, ps []float64) (mean float64) {
	for i, w := range ws {
		mean += w * ps[i] // want `naive float accumulation`
	}
	return mean
}

// chunkWeights stay integer and unflagged.
func chunkWeights(ws []int) int {
	s := 0
	for _, w := range ws {
		s += w
	}
	return s
}
