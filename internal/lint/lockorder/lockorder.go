// Package lockorder detects lock-acquisition order cycles across the whole
// internal/ tree. The serving path holds locks across package boundaries —
// the server's admission mutex is held while election code runs, election
// aggregates while prob caches fill — and two call chains that acquire the
// same two mutexes in opposite orders deadlock only under load, long after
// the code reviews that introduced each half.
//
// The analyzer builds an acquisition graph whose nodes are named locks
// (package-level sync.Mutex/RWMutex variables and struct mutex fields,
// identified textually as pkg.Var or pkg.Type.Field) and whose edges record
// "locked B while holding A". Edges come from direct nesting inside one
// function and, interprocedurally, from calling a function that acquires
// locks — each function's transitive acquisition set is exported as an
// Acquires fact, so the edge server.mu → prob.cacheMu exists even though no
// single function mentions both. Every package also exports its accumulated
// graph as a LockGraph package fact; a dependent package unions the graphs
// of its imports with its own edges and reports any cycle that a locally
// created edge closes, so each cycle is reported exactly once, in the
// package that completed it.
//
// The held-set tracking is a linear, branch-insensitive replay: an Unlock on
// any path releases, a deferred Unlock holds to function end. That
// overestimates neither direction badly in this codebase's lock style
// (lock/defer-unlock or strict lock/unlock bracketing) and keeps the
// analysis cheap enough for every make check.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "detects lock-acquisition order cycles, including across packages via Acquires facts",
	Run:       run,
	FactTypes: []analysis.Fact{new(Acquires), new(LockGraph)},
}

// Acquires is the object fact attached to a function: the set of named locks
// the function may acquire, directly or through its callees.
type Acquires struct {
	Locks []string `json:"locks"`
}

// AFact marks Acquires as a fact.
func (*Acquires) AFact() {}

// Edge is one "To acquired while holding From" observation.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// LockGraph is the package fact carrying the acquisition graph accumulated
// over the package and its analyzed dependencies.
type LockGraph struct {
	Edges []Edge `json:"edges"`
}

// AFact marks LockGraph as a fact.
func (*LockGraph) AFact() {}

// event kinds in a function body, in (approximate) execution order.
const (
	evLock = iota
	evUnlock
	evCall
)

type event struct {
	kind     int
	key      string      // lock identity for evLock/evUnlock
	fn       *types.Func // callee for evCall
	pos      token.Pos
	deferred bool
}

// lockMethods classifies the sync mutex methods we model. TryLock variants
// are ignored: a failed TryLock acquires nothing, and modeling the success
// path would manufacture edges the code may deliberately avoid.
var lockMethods = map[string]int{
	"Lock":    evLock,
	"RLock":   evLock,
	"Unlock":  evUnlock,
	"RUnlock": evUnlock,
}

func run(pass *analysis.Pass) error {
	if !analysis.InInternal(pass.Path) {
		return nil
	}

	// Pass 1: per function, collect lock/unlock/call events.
	funcEvents := make(map[*types.Func][]event)
	var order []*types.Func // source order, for deterministic replay
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			funcEvents[fn] = collectEvents(pass, fd.Body)
			order = append(order, fn)
		}
	}

	// Pass 2: transitive acquisition sets, to a fixed point over the
	// same-package call graph; cross-package callees contribute through
	// their imported Acquires facts.
	acq := make(map[*types.Func]map[string]bool, len(funcEvents))
	for fn, evs := range funcEvents {
		set := make(map[string]bool)
		for _, ev := range evs {
			if ev.kind == evLock {
				set[ev.key] = true
			}
		}
		acq[fn] = set
	}
	acquiresOf := func(fn *types.Func) []string {
		if set, ok := acq[fn]; ok {
			keys := make([]string, 0, len(set))
			for k := range set {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return keys
		}
		var fact Acquires
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Locks
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for fn, evs := range funcEvents {
			for _, ev := range evs {
				if ev.kind != evCall {
					continue
				}
				for _, k := range acquiresOf(ev.fn) {
					if !acq[fn][k] {
						acq[fn][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: replay events with a held set, creating edges.
	type edgePos struct {
		e   Edge
		pos token.Pos
	}
	localEdges := make(map[Edge]token.Pos)
	var localOrder []edgePos
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		e := Edge{From: from, To: to}
		if _, ok := localEdges[e]; !ok {
			localEdges[e] = pos
			localOrder = append(localOrder, edgePos{e, pos})
		}
	}
	for _, fn := range order {
		var held []string
		for _, ev := range funcEvents[fn] {
			switch ev.kind {
			case evLock:
				for _, h := range held {
					addEdge(h, ev.key, ev.pos)
				}
				held = append(held, ev.key)
			case evUnlock:
				if ev.deferred {
					continue // held to function end
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				for _, h := range held {
					for _, a := range acquiresOf(ev.fn) {
						addEdge(h, a, ev.pos)
					}
				}
			}
		}
	}

	// Union the graphs of analyzed dependencies with the local edges and
	// publish the result for packages above us.
	combined := make(map[Edge]bool, len(localEdges))
	for e := range localEdges {
		combined[e] = true
	}
	for _, imp := range pass.Imports {
		var g LockGraph
		if pass.ImportPackageFact(imp, &g) {
			for _, e := range g.Edges {
				combined[e] = true
			}
		}
	}
	all := make([]Edge, 0, len(combined))
	for e := range combined {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		return all[i].To < all[j].To
	})
	pass.ExportPackageFact(&LockGraph{Edges: all})
	for fn, set := range acq {
		if len(set) == 0 || analysis.ObjectKey(fn) == "" {
			continue
		}
		pass.ExportObjectFact(fn, &Acquires{Locks: acquiresOf(fn)})
	}

	// Pass 4: report each cycle that a local edge closes, once, at the
	// earliest local edge participating in it.
	adj := make(map[string][]string)
	for e := range combined {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	sort.Slice(localOrder, func(i, j int) bool { return localOrder[i].pos < localOrder[j].pos })
	reported := make(map[string]bool)
	for _, ep := range localOrder {
		path := shortestPath(adj, ep.e.To, ep.e.From)
		if path == nil {
			continue
		}
		// path runs To..From; drop the closing From so the cycle lists each
		// node once.
		cycle := append([]string{ep.e.From}, path[:len(path)-1]...)
		sig := canonicalCycle(cycle)
		if reported[sig] {
			continue
		}
		reported[sig] = true
		pass.Reportf(ep.pos, "lock order cycle: %s -> %s (this acquisition closes the cycle; pick one global order)",
			strings.Join(cycle, " -> "), cycle[0])
	}
	return nil
}

// collectEvents walks a function body and returns its lock events in
// position order.
func collectEvents(pass *analysis.Pass, body *ast.BlockStmt) []event {
	var events []event
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if ok {
				if fn, isFn := pass.Info.ObjectOf(sel.Sel).(*types.Func); isFn &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					kind, isLockOp := lockMethods[fn.Name()]
					if isLockOp {
						if key := lockKey(pass, sel.X); key != "" {
							events = append(events, event{kind: kind, key: key, pos: x.Pos(), deferred: deferred[x]})
						}
						return true
					}
				}
			}
			if fn := callee(pass, x); fn != nil && fn.Pkg() != nil && analysis.InInternal(fn.Pkg().Path()) {
				events = append(events, event{kind: evCall, fn: fn, pos: x.Pos()})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// lockKey names the lock behind the receiver expression of a Lock call:
// pkg.Var for package-level mutexes, pkg.Type.Field for struct fields.
// Locals and unrecognized shapes yield "" and are ignored — a function-local
// mutex cannot participate in a cross-function order cycle under this
// codebase's conventions.
func lockKey(pass *analysis.Pass, expr ast.Expr) string {
	switch x := expr.(type) {
	case *ast.Ident:
		if v, ok := pass.Info.ObjectOf(x).(*types.Var); ok &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			field := sel.Obj()
			recv := sel.Recv()
			for {
				p, ok := recv.(*types.Pointer)
				if !ok {
					break
				}
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && field.Pkg() != nil {
				return fmt.Sprintf("%s.%s.%s", field.Pkg().Path(), named.Obj().Name(), field.Name())
			}
			return ""
		}
		// Qualified package-level var: otherpkg.Mu.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := pass.Info.ObjectOf(id).(*types.PkgName); isPkg {
				if v, ok := pass.Info.ObjectOf(x.Sel).(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	}
	return ""
}

// callee resolves a call expression to its static *types.Func, or nil.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// shortestPath returns the node sequence from src to dst (inclusive of both)
// by BFS, or nil when dst is unreachable.
func shortestPath(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if _, seen := prev[m]; seen {
				continue
			}
			prev[m] = n
			if m == dst {
				var path []string
				for at := dst; ; at = prev[at] {
					path = append([]string{at}, path...)
					if at == src {
						return path
					}
				}
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// canonicalCycle produces a rotation-independent signature for a cycle.
func canonicalCycle(nodes []string) string {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	return strings.Join(sorted, "|")
}
