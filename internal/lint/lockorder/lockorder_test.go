package lockorder_test

import (
	"testing"

	"liquid/internal/lint/lintest"
	"liquid/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	lintest.Run(t, "testdata", lockorder.Analyzer)
}
