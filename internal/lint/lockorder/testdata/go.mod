module liquid

go 1.24
