// Package locka is the dependency side of the lockorder fixture: it owns a
// package-level mutex and exports a function that acquires it, so dependent
// packages exercise the Acquires fact rather than seeing the lock directly.
package locka

import "sync"

// Mu is the package lock dependents acquire through AcquireMu.
var Mu sync.Mutex

// Pair holds two mutexes always taken in the same order.
type Pair struct {
	mu    sync.Mutex
	other sync.Mutex
}

// AcquireMu briefly holds Mu; its Acquires fact is what the cross-package
// half of the cycle in lockb is built from.
func AcquireMu() {
	Mu.Lock()
	defer Mu.Unlock()
}

// Straight nests the pair in a consistent order: an edge, but no cycle.
func (p *Pair) Straight() {
	p.mu.Lock()
	p.other.Lock()
	p.other.Unlock()
	p.mu.Unlock()
}

// StraightAgain repeats the same order; the duplicate edge must not turn
// into a finding.
func (p *Pair) StraightAgain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.other.Lock()
	defer p.other.Unlock()
}
