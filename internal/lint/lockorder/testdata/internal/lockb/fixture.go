// Package lockb seeds the two deadlock shapes lockorder must catch: an
// intra-package pair of functions that nest the same two mutexes in
// opposite orders, and a cross-package cycle whose second half is only
// visible through locka's Acquires fact.
package lockb

import (
	"sync"

	"liquid/internal/locka"
)

// Store pairs a local mutex against locka.Mu across package boundaries.
type Store struct {
	mu sync.Mutex
}

var state sync.Mutex
var journal sync.Mutex

// LockStateThenJournal and LockJournalThenState disagree on nesting order:
// the classic seeded deadlock. The cycle is reported once, at the edge that
// is created first in source order.
func LockStateThenJournal() {
	state.Lock()
	journal.Lock() // want `lock order cycle`
	journal.Unlock()
	state.Unlock()
}

func LockJournalThenState() {
	journal.Lock()
	state.Lock()
	state.Unlock()
	journal.Unlock()
}

// TakeThenDep holds the store lock across a call into locka; AcquireMu's
// Acquires fact turns that call into the edge Store.mu -> locka.Mu.
func (s *Store) TakeThenDep() {
	s.mu.Lock()
	locka.AcquireMu() // want `lock order cycle`
	s.mu.Unlock()
}

// DepThenTake closes the cross-package cycle in the other direction.
func (s *Store) DepThenTake() {
	locka.Mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	locka.Mu.Unlock()
}

// Sequential acquires both locks without overlap: no edge, no finding.
func (s *Store) Sequential() {
	s.mu.Lock()
	s.mu.Unlock()
	locka.AcquireMu()
}
