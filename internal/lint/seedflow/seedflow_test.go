package seedflow_test

import (
	"testing"

	"liquid/internal/lint/lintest"
	"liquid/internal/lint/seedflow"
)

func TestSeedFlow(t *testing.T) {
	lintest.Run(t, "testdata", seedflow.Analyzer)
}
