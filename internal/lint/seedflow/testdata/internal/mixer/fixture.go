// Package mixer is the laundering half of the seedflow fixture: nothing in
// it mentions a seed, so the syntactic rule is blind here, and only the
// RawRand facts exported from this package let callers be judged.
package mixer

// Scramble looks innocent, but its parameter feeds raw arithmetic: RawRand
// on parameter 0.
func Scramble(x uint64) uint64 {
	return x*2862933555777941757 + 3037000493
}

// Forward only hands its parameter on to Scramble: raw transitively.
func Forward(x uint64) uint64 {
	return Scramble(x)
}

// Label never does arithmetic on its parameter; passing a seed here is fine.
func Label(x uint64) string {
	if x == 0 {
		return "zero"
	}
	return "nonzero"
}
