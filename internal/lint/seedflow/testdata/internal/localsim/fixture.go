// Package localsim exercises the math/rand (v1) import rule.
package localsim

import mrand "math/rand" // want `math/rand \(v1\)`

// Legacy draws from the v1 global-ish API.
func Legacy(n int) int {
	return mrand.Intn(n)
}
