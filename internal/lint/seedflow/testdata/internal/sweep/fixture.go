// Package sweep exercises the RawRand call-site rule: seeds passed verbatim
// into parameters that do unblessed arithmetic, across packages and within
// one.
package sweep

import (
	"liquid/internal/mixer"
	"liquid/internal/rng"
)

// Trial launders its seed through mixer.Scramble, which the fact exposes.
func Trial(seed uint64) uint64 {
	return mixer.Scramble(seed) // want `raw-mixing parameter`
}

// Chain hits the transitive fact on mixer.Forward.
func Chain(seed uint64) uint64 {
	return mixer.Forward(seed) // want `raw-mixing parameter`
}

// Tag passes the seed into a parameter that never feeds arithmetic: fine.
func Tag(seed uint64) string {
	return mixer.Label(seed)
}

// Blessed routes the seed through rng, the one mixing layer that is always
// allowed to take it.
func Blessed(seed uint64) uint64 {
	return rng.Mix(seed)
}

// localMix is the same-package variant of a disguised mixer.
func localMix(x uint64) uint64 {
	return x ^ (x >> 31)
}

// Local is judged by the local raw-parameter set, not a fact.
func Local(seed uint64) uint64 {
	return localMix(seed) // want `raw-mixing parameter`
}
