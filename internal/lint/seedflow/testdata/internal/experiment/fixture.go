// Package experiment is a seedflow fixture: rand/v2 use and seed arithmetic
// outside internal/rng are violations.
package experiment

import "math/rand/v2" // want `math/rand/v2 outside internal/rng`

// Streams builds a generator directly and offsets the seed by hand.
func Streams(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed+1)) // want `raw seed arithmetic \(\+\)`
}

// TrialSeed is the exact bug class the engine PR retired: adjacent sweep
// points got overlapping streams from seed+i.
func TrialSeed(seed uint64, i int) uint64 {
	return seed + uint64(i) // want `raw seed arithmetic \(\+\)`
}

// XorSeed hides the arithmetic in a xor.
func XorSeed(cfg struct{ Seed uint64 }, k uint64) uint64 {
	return cfg.Seed ^ k // want `raw seed arithmetic \(\^\)`
}

// BumpSeed mutates a seed in place.
func BumpSeed(seed *uint64) {
	*seed++ // want `raw seed arithmetic \(\+\+\)`
}

// CompareSeed only compares; comparisons carry no derivation.
func CompareSeed(seed uint64) bool {
	return seed == 0
}

// PassThrough hands the seed to a function that can mix it properly.
func PassThrough(seed uint64, mix func(uint64) uint64) uint64 {
	return mix(seed)
}
