// Package rng is exempt from seedflow: it is the one place allowed to do
// seed arithmetic and construct math/rand/v2 generators.
package rng

import "math/rand/v2"

// Mix does raw seed arithmetic, legally.
func Mix(seed uint64) uint64 {
	return seed*0x9E3779B97F4A7C15 + 1
}

// New constructs the underlying generator, legally.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(Mix(seed), Mix(seed+1)))
}
