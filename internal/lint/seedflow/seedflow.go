// Package seedflow enforces the repository's single-origin rule for
// randomness: every stream starts at rng.New and splits with
// rng.Derive/Stream.Derive. Ad-hoc seed arithmetic (seed+i, seed^k) was the
// bug class behind the correlated-sweep seeds retired in the engine PR — two
// sweep points one apart produced overlapping streams — and direct
// math/rand construction bypasses the SplitMix64 mixing that makes derived
// streams pairwise independent.
//
// The analyzer reports, everywhere outside internal/rng:
//
//   - imports of math/rand (v1) and math/rand/v2 — all generator
//     construction belongs behind rng.New;
//   - arithmetic whose operands mention a seed (ident or field named
//     *seed*): +, -, *, /, %, ^, |, &, &^, <<, >> in expressions, compound
//     assignments, and ++/--. Comparisons are fine; so is passing a seed
//     verbatim to rng.New/rng.Derive.
package seedflow

import (
	"go/ast"
	"go/token"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the seedflow check.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "flags raw seed arithmetic and math/rand use outside internal/rng",
	Run:  run,
}

func inScope(path string) bool {
	tail := analysis.PackageTail(path)
	return tail != "rng" && !strings.HasPrefix(tail, "rng/")
}

var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.XOR: true, token.OR: true, token.AND: true,
	token.AND_NOT: true, token.SHL: true, token.SHR: true,
}

var arithAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.XOR_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.AND_NOT_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand":
				pass.Reportf(imp.Pos(), "import of math/rand (v1): construct streams with rng.New and split with rng.Derive")
			case "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of math/rand/v2 outside internal/rng: construct streams with rng.New and split with rng.Derive")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithOps[n.Op] && (mentionsSeed(n.X) || mentionsSeed(n.Y)) {
					pass.Reportf(n.OpPos, "raw seed arithmetic (%s) breaks stream independence: derive substreams with rng.Derive(root, labels...) or Stream.Derive", n.Op)
				}
			case *ast.AssignStmt:
				if arithAssignOps[n.Tok] {
					for _, lhs := range n.Lhs {
						if mentionsSeed(lhs) {
							pass.Reportf(n.TokPos, "raw seed arithmetic (%s) breaks stream independence: derive substreams with rng.Derive(root, labels...) or Stream.Derive", n.Tok)
							break
						}
					}
				}
			case *ast.IncDecStmt:
				if mentionsSeed(n.X) {
					pass.Reportf(n.TokPos, "raw seed arithmetic (%s) breaks stream independence: derive substreams with rng.Derive(root, labels...) or Stream.Derive", n.Tok)
				}
			}
			return true
		})
	}
	return nil
}

// mentionsSeed reports whether e is an identifier or selector whose name
// contains "seed". Deliberately shallow: `seed + 1` and `cfg.Seed ^ k` are
// flagged, but `f(seed) + 1` is not — the seed there already went through a
// call that can mix it properly.
func mentionsSeed(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "seed") || mentionsSeed(e.X)
	case *ast.ParenExpr:
		return mentionsSeed(e.X)
	case *ast.UnaryExpr:
		return mentionsSeed(e.X)
	case *ast.StarExpr:
		return mentionsSeed(e.X)
	case *ast.BinaryExpr:
		return mentionsSeed(e.X) || mentionsSeed(e.Y)
	}
	return false
}
