// Package seedflow enforces the repository's single-origin rule for
// randomness: every stream starts at rng.New and splits with
// rng.Derive/Stream.Derive. Ad-hoc seed arithmetic (seed+i, seed^k) was the
// bug class behind the correlated-sweep seeds retired in the engine PR — two
// sweep points one apart produced overlapping streams — and direct
// math/rand construction bypasses the SplitMix64 mixing that makes derived
// streams pairwise independent.
//
// The analyzer reports, everywhere outside internal/rng:
//
//   - imports of math/rand (v1) and math/rand/v2 — all generator
//     construction belongs behind rng.New;
//   - arithmetic whose operands mention a seed (ident or field named
//     *seed*): +, -, *, /, %, ^, |, &, &^, <<, >> in expressions, compound
//     assignments, and ++/--. Comparisons are fine; so is passing a seed
//     verbatim to rng.New/rng.Derive.
//
// Those two rules are syntactic and were once the whole check, which left a
// laundering hole: rename the parameter and the arithmetic disappears —
// `func mix(x uint64) uint64 { return x*k + 1 }` draws no finding, and
// `mix(seed)` used to draw none either. The fact layer closes it: every
// function whose parameter feeds raw arithmetic (directly, or by being
// passed into another raw parameter) carries a RawRand fact recording which
// parameters are raw, and passing anything seed-named into a raw parameter
// is flagged at the call site, across package boundaries. internal/rng is
// the one blessed mixing layer: it exports no RawRand facts and its callees
// are never flagged — rng.New(seed) is the fix, not a finding.
package seedflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the seedflow check.
var Analyzer = &analysis.Analyzer{
	Name:      "seedflow",
	Doc:       "flags raw seed arithmetic, math/rand use, and seeds passed into raw-mixing parameters (RawRand facts) outside internal/rng",
	Run:       run,
	FactTypes: []analysis.Fact{new(RawRand)},
}

// RawRand marks a function with parameters that feed raw arithmetic instead
// of going through rng. Params holds the 0-based indices of those
// parameters.
type RawRand struct {
	Params []int `json:"params"`
}

// AFact marks RawRand as a fact.
func (*RawRand) AFact() {}

func inScope(path string) bool {
	tail := analysis.PackageTail(path)
	return tail != "rng" && !strings.HasPrefix(tail, "rng/")
}

var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.XOR: true, token.OR: true, token.AND: true,
	token.AND_NOT: true, token.SHL: true, token.SHR: true,
}

var arithAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.XOR_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.AND_NOT_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	raw := rawParams(pass)
	rawOf := func(fn *types.Func, idx int) bool {
		if set, ok := raw[fn]; ok {
			return set[idx]
		}
		if fn.Pkg() == nil || isRng(fn.Pkg().Path()) {
			return false // rng is the blessed mixing layer
		}
		var fact RawRand
		if pass.ImportObjectFact(fn, &fact) {
			for _, p := range fact.Params {
				if p == idx {
					return true
				}
			}
		}
		return false
	}
	for fn, set := range raw {
		if len(set) == 0 || analysis.ObjectKey(fn) == "" {
			continue
		}
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		pass.ExportObjectFact(fn, &RawRand{Params: idxs})
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand":
				pass.Reportf(imp.Pos(), "import of math/rand (v1): construct streams with rng.New and split with rng.Derive")
			case "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of math/rand/v2 outside internal/rng: construct streams with rng.New and split with rng.Derive")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithOps[n.Op] && (mentionsSeed(n.X) || mentionsSeed(n.Y)) {
					pass.Reportf(n.OpPos, "raw seed arithmetic (%s) breaks stream independence: derive substreams with rng.Derive(root, labels...) or Stream.Derive", n.Op)
				}
			case *ast.AssignStmt:
				if arithAssignOps[n.Tok] {
					for _, lhs := range n.Lhs {
						if mentionsSeed(lhs) {
							pass.Reportf(n.TokPos, "raw seed arithmetic (%s) breaks stream independence: derive substreams with rng.Derive(root, labels...) or Stream.Derive", n.Tok)
							break
						}
					}
				}
			case *ast.IncDecStmt:
				if mentionsSeed(n.X) {
					pass.Reportf(n.TokPos, "raw seed arithmetic (%s) breaks stream independence: derive substreams with rng.Derive(root, labels...) or Stream.Derive", n.Tok)
				}
			case *ast.CallExpr:
				fn := staticCallee(pass, n)
				if fn == nil {
					return true
				}
				for i, arg := range n.Args {
					if mentionsSeed(arg) && rawOf(fn, i) {
						pass.Reportf(arg.Pos(), "seed passed into raw-mixing parameter %d of %s (RawRand fact): the callee does unblessed arithmetic on it; derive substreams with rng.Derive instead", i, fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

func isRng(path string) bool {
	tail := analysis.PackageTail(path)
	return tail == "rng" || strings.HasPrefix(tail, "rng/")
}

// rawParams computes, for every function declared in this package, the set
// of parameter indices that feed raw arithmetic — directly, or by being
// passed on into another function's raw parameter (to a fixed point within
// the package; cross-package callees answer via RawRand facts).
func rawParams(pass *analysis.Pass) map[*types.Func]map[int]bool {
	type fdecl struct {
		fn     *types.Func
		body   *ast.BlockStmt
		params map[types.Object]int
	}
	var decls []fdecl
	raw := make(map[*types.Func]map[int]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			params := make(map[types.Object]int)
			idx := 0
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						idx++
						continue
					}
					for _, name := range field.Names {
						if obj := pass.Info.ObjectOf(name); obj != nil {
							params[obj] = idx
						}
						idx++
					}
				}
			}
			decls = append(decls, fdecl{fn: fn, body: fd.Body, params: params})
			raw[fn] = make(map[int]bool)
		}
	}

	// Direct: a parameter appearing as an operand of arithmetic.
	for _, d := range decls {
		markOperand := func(e ast.Expr) {
			if i, ok := paramIn(pass, e, d.params); ok {
				raw[d.fn][i] = true
			}
		}
		ast.Inspect(d.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithOps[n.Op] {
					markOperand(n.X)
					markOperand(n.Y)
				}
			case *ast.AssignStmt:
				if arithAssignOps[n.Tok] {
					for _, lhs := range n.Lhs {
						markOperand(lhs)
					}
				}
			case *ast.IncDecStmt:
				markOperand(n.X)
			}
			return true
		})
	}

	// Transitive: a parameter handed on into a raw parameter elsewhere.
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			ast.Inspect(d.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pass, call)
				if callee == nil || callee.Pkg() == nil || isRng(callee.Pkg().Path()) {
					return true
				}
				for ai, arg := range call.Args {
					pi, isParam := paramIn(pass, arg, d.params)
					if !isParam || raw[d.fn][pi] {
						continue
					}
					calleeRaw := false
					if set, local := raw[callee]; local {
						calleeRaw = set[ai]
					} else {
						var fact RawRand
						if pass.ImportObjectFact(callee, &fact) {
							for _, p := range fact.Params {
								if p == ai {
									calleeRaw = true
									break
								}
							}
						}
					}
					if calleeRaw {
						raw[d.fn][pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return raw
}

// paramIn resolves e (through parens, derefs, and unary ops) to one of the
// function's parameters, returning its index.
func paramIn(pass *analysis.Pass, e ast.Expr, params map[types.Object]int) (int, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(e); obj != nil {
			i, ok := params[obj]
			return i, ok
		}
	case *ast.ParenExpr:
		return paramIn(pass, e.X, params)
	case *ast.StarExpr:
		return paramIn(pass, e.X, params)
	case *ast.UnaryExpr:
		return paramIn(pass, e.X, params)
	}
	return 0, false
}

// staticCallee resolves a call to its *types.Func, or nil.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// mentionsSeed reports whether e is an identifier or selector whose name
// contains "seed". Deliberately shallow: `seed + 1` and `cfg.Seed ^ k` are
// flagged, but `f(seed) + 1` is not — the seed there already went through a
// call that can mix it properly.
func mentionsSeed(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "seed") || mentionsSeed(e.X)
	case *ast.ParenExpr:
		return mentionsSeed(e.X)
	case *ast.UnaryExpr:
		return mentionsSeed(e.X)
	case *ast.StarExpr:
		return mentionsSeed(e.X)
	case *ast.BinaryExpr:
		return mentionsSeed(e.X) || mentionsSeed(e.Y)
	}
	return false
}
