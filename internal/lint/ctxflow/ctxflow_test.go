package ctxflow_test

import (
	"testing"

	"liquid/internal/lint/ctxflow"
	"liquid/internal/lint/lintest"
)

func TestCtxFlow(t *testing.T) {
	lintest.Run(t, "testdata", ctxflow.Analyzer)
}
