// Package ctxflow enforces cooperative cancellation in the long-running
// layers. The engine's SIGINT story — drain in-flight experiments, still
// flush partial output — only works if every replication/round loop between
// cmd/ and the leaf samplers accepts a context and actually consults it.
// A single exported entry point that spins trials without a ctx reintroduces
// the unkillable half-hour run.
//
// Three rules:
//
//  1. (internal/{engine,experiment,localsim,fault}) An exported function
//     whose body loops over trials, rounds, replications, or iterations
//     must accept a context.Context, and a declared ctx parameter must be
//     used (checked or forwarded) somewhere in the body.
//  2. context.Background()/context.TODO() must not be created in any
//     internal package — contexts are born in cmd/ (or tests) and flow down.
//  3. (internal/prob) Any function — exported or not — that spawns a
//     goroutine must accept a context.Context and use it. The fork-join
//     D&C evaluators recurse through unexported helpers; a helper that
//     forks subtrees without consulting ctx would keep burning cores after
//     the caller cancelled, exactly the leak rule 1 guards against one
//     layer up.
//  4. (internal/server) An HTTP handler — any function taking both an
//     http.ResponseWriter and a *http.Request — must derive its context
//     from r.Context() (or forward the request to something that does).
//     Per-request deadline propagation is the serving layer's entire
//     cancellation story: a handler that evaluates on a context not rooted
//     in the request's keeps computing for clients that hung up, and rule 2
//     already bans the usual way that happens (context.Background below
//     cmd/). Passing the *http.Request itself onward counts as use, so
//     middleware that only wraps and delegates stays clean.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags trial/round loops in exported functions without context plumbing, and context.Background below cmd/",
	Run:  run,
}

// loopScope lists the packages whose exported functions run long loops on
// behalf of cmd/.
var loopScope = map[string]bool{
	"engine":     true,
	"experiment": true,
	"localsim":   true,
	"fault":      true,
}

func inLoopScope(path string) bool {
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return loopScope[tail]
}

// inForkScope reports whether path is the kernel package whose goroutine
// spawns rule 3 covers.
func inForkScope(path string) bool {
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return tail == "prob"
}

// inHandlerScope reports whether path is the serving layer whose HTTP
// handlers rule 4 covers.
func inHandlerScope(path string) bool {
	tail := analysis.PackageTail(path)
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return tail == "server"
}

// loopWords are the identifier fragments that mark a replication loop.
var loopWords = []string{"trial", "round", "replic", "iter", "sweep", "epoch"}

func run(pass *analysis.Pass) error {
	internal := analysis.InInternal(pass.Path)
	for _, f := range pass.Files {
		if internal {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.ObjectOf(sel.Sel).(*types.Func)
				if ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() created below cmd/: accept a context.Context parameter and thread it down instead", fn.Name())
				}
				return true
			})
		}
		if inLoopScope(pass.Path) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				checkFunc(pass, fd)
			}
		}
		if inForkScope(pass.Path) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkForkFunc(pass, fd)
			}
		}
		if inHandlerScope(pass.Path) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkHandlerFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkHandlerFunc enforces rule 4: a function shaped like an HTTP handler
// (takes an http.ResponseWriter and a *http.Request) must consult
// r.Context() or forward the request value onward.
func checkHandlerFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	reqObj := requestParam(pass, fd)
	if reqObj == nil || !hasResponseWriterParam(pass, fd) {
		return
	}
	callsContext := false
	forwardsRequest := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if callsContext {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
			if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == reqObj {
				callsContext = true
				return false
			}
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == reqObj {
				forwardsRequest = true
			}
		}
		return true
	})
	if !callsContext && !forwardsRequest {
		pass.Reportf(fd.Name.Pos(), "HTTP handler %s never uses r.Context(): derive the request context and thread it into every evaluation call so deadlines propagate", fd.Name.Name)
	}
}

// requestParam returns the object of the first *net/http.Request parameter.
func requestParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		t := pass.TypeOf(star.X)
		if t == nil || !isNamed(t, "net/http", "Request") {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.ObjectOf(name); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// hasResponseWriterParam reports whether fd declares an
// http.ResponseWriter parameter (what distinguishes a handler from a
// decode helper that merely reads the request body).
func hasResponseWriterParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isNamed(t, "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// isNamed reports whether t is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxParam := contextParam(pass, fd)
	loop := findReplicationLoop(pass, fd.Body)
	if loop == nil {
		return
	}
	if ctxParam == nil {
		pass.Reportf(loop.Pos(), "exported %s loops over %s without accepting a context.Context: plumb ctx through and check ctx.Err() so long runs stay cancellable", fd.Name.Name, loopLabel(loop))
		return
	}
	if !usesObject(pass, fd.Body, ctxParam) {
		pass.Reportf(fd.Name.Pos(), "exported %s declares a context.Context but never checks or forwards it; dead ctx parameters hide uncancellable loops", fd.Name.Name)
	}
}

// checkForkFunc enforces rule 3: a function that spawns goroutines must
// accept a context.Context and use it. Export status is irrelevant here —
// the fork-join evaluators do their spawning in unexported recursion
// helpers, and those are exactly the functions that must stay cancellable.
func checkForkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	spawn := findGoStmt(fd.Body)
	if spawn == nil {
		return
	}
	ctxParam := contextParam(pass, fd)
	if ctxParam == nil {
		pass.Reportf(spawn.Pos(), "%s spawns a goroutine without accepting a context.Context: fork-join helpers must take ctx so cancelled evaluations stop forking subtrees", fd.Name.Name)
		return
	}
	if !usesObject(pass, fd.Body, ctxParam) {
		pass.Reportf(fd.Name.Pos(), "%s spawns goroutines but never checks or forwards its context.Context; dead ctx parameters hide uncancellable forks", fd.Name.Name)
	}
}

// findGoStmt returns the first go statement in body, including inside
// function literals: a closure's spawns are still the enclosing function's
// responsibility, since the closure shares its ctx (or lack of one).
func findGoStmt(body *ast.BlockStmt) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			found = g
		}
		return found == nil
	})
	return found
}

// contextParam returns the object of the first context.Context parameter.
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.ObjectOf(name); obj != nil {
				return obj
			}
		}
	}
	return nil
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// findReplicationLoop returns the first for/range statement that counts up
// to a trial/round/replication-like integer bound. Ranging over a *slice*
// whose name merely mentions rounds (a per-node crash-round table, say) is
// not a replication loop; the bound must itself be an integer count.
func findReplicationLoop(pass *analysis.Pass, body *ast.BlockStmt) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are checked through their caller's signature.
			return false
		case *ast.ForStmt:
			if bound := condBound(n.Cond); bound != nil &&
				isInteger(pass.TypeOf(bound)) && mentionsLoopWord(bound) {
				found = n
			}
		case *ast.RangeStmt:
			// Only range-over-int (`for r := range rounds`) counts.
			if isInteger(pass.TypeOf(n.X)) && mentionsLoopWord(n.X) {
				found = n
			}
		}
		return found == nil
	})
	return found
}

// condBound extracts the bound side of a loop condition: Y of i < bound,
// X of bound > i; otherwise the whole condition.
func condBound(cond ast.Expr) ast.Expr {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return cond
	}
	switch be.Op {
	case token.LSS, token.LEQ:
		return be.Y
	case token.GTR, token.GEQ:
		return be.X
	}
	return cond
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func loopLabel(s ast.Stmt) string {
	var e ast.Expr
	switch s := s.(type) {
	case *ast.ForStmt:
		e = s.Cond
	case *ast.RangeStmt:
		e = s.X
	}
	if name := firstLoopWordIdent(e); name != "" {
		return name
	}
	return "replications"
}

func mentionsLoopWord(e ast.Expr) bool {
	return firstLoopWordIdent(e) != ""
}

func firstLoopWordIdent(e ast.Expr) string {
	if e == nil {
		return ""
	}
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lower := strings.ToLower(id.Name)
		for _, w := range loopWords {
			if strings.Contains(lower, w) {
				found = id.Name
				return false
			}
		}
		return true
	})
	return found
}

// usesObject reports whether obj is referenced anywhere in body.
func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
