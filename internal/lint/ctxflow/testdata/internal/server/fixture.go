// Package server is a ctxflow fixture for rule 4: HTTP handlers — functions
// taking both an http.ResponseWriter and a *http.Request — must derive their
// context from r.Context() or forward the request onward.
package server

import (
	"context"
	"io"
	"net/http"
)

func evaluate(ctx context.Context) error {
	return ctx.Err()
}

// handleWithContext is the compliant shape: the handler roots its work in
// the request's context so client hang-ups cancel the evaluation.
func handleWithContext(w http.ResponseWriter, r *http.Request) {
	if err := evaluate(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	}
}

// handleForwarding delegates the whole request; middleware that only wraps
// stays clean because passing r onward counts as use.
func handleForwarding(w http.ResponseWriter, r *http.Request) {
	handleWithContext(w, r)
}

// handleIgnoringContext computes on no context at all: the evaluation keeps
// running after the client hangs up.
func handleIgnoringContext(w http.ResponseWriter, r *http.Request) { // want `HTTP handler handleIgnoringContext never uses r.Context\(\)`
	io.WriteString(w, "ok")
}

// decodeOnly takes just the request, no writer: decode helpers that read the
// body without evaluating are not handlers and stay out of scope.
func decodeOnly(r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body)
}

// Keep the unexported fixtures referenced so the module compiles vet-clean.
var (
	_ = handleWithContext
	_ = handleForwarding
	_ = handleIgnoringContext
	_ = decodeOnly
)
