// Package prob is a ctxflow fixture for rule 3: functions in the kernel
// package that spawn goroutines must accept and use a context.Context,
// whether or not they are exported.
package prob

import (
	"context"
	"sync"
)

// forkWithCtx is the compliant shape: unexported recursion helper, spawns a
// subtree goroutine, checks ctx before forking.
func forkWithCtx(ctx context.Context, depth int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if depth == 0 {
		return nil
	}
	done := make(chan error, 1)
	go func() { done <- forkWithCtx(ctx, depth-1) }()
	if err := forkWithCtx(ctx, depth-1); err != nil {
		<-done
		return err
	}
	return <-done
}

// ForkNoCtx spawns with no way to stop.
func ForkNoCtx(depth int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `spawns a goroutine without accepting a context.Context`
		defer wg.Done()
	}()
	wg.Wait()
}

// forkDeadCtx declares a ctx and then ignores it while forking.
func forkDeadCtx(ctx context.Context, depth int) { // want `never checks or forwards its context.Context`
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// forkInsideClosure hides the go statement inside a function literal; the
// enclosing declaration is still on the hook for a ctx.
func forkInsideClosure(reps int) {
	run := func() {
		ch := make(chan int, 1)
		go func() { ch <- 1 }() // want `spawns a goroutine without accepting a context.Context`
		<-ch
	}
	run()
}

// sequentialHelper spawns nothing; no ctx needed.
func sequentialHelper(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// Keep the unexported fixtures referenced so the module compiles vet-clean.
var (
	_ = forkWithCtx
	_ = forkDeadCtx
	_ = forkInsideClosure
	_ = sequentialHelper
)
