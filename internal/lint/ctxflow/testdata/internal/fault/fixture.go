// Package fault is a ctxflow fixture: exported replication loops need a
// live context, and contexts are never born below cmd/.
package fault

import "context"

// RunTrials spins replications with no way to cancel them.
func RunTrials(trials int) int {
	total := 0
	for t := 0; t < trials; t++ { // want `without accepting a context.Context`
		total += t
	}
	return total
}

// RunTrialsCtx accepts and checks a context.
func RunTrialsCtx(ctx context.Context, trials int) (int, error) {
	total := 0
	for t := 0; t < trials; t++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += t
	}
	return total, nil
}

// DeadCtx declares a context and then ignores it.
func DeadCtx(ctx context.Context, rounds int) int { // want `never checks or forwards`
	total := 0
	for r := 0; r < rounds; r++ {
		total += r
	}
	return total
}

// Detached conjures a root context below cmd/.
func Detached() context.Context {
	return context.Background() // want `context.Background\(\) created below cmd/`
}

// runTrials is unexported: callers inside the package own the ctx story.
func runTrials(trials int) int {
	total := 0
	for t := 0; t < trials; t++ {
		total += t
	}
	return total
}

// CrashTable ranges a slice that merely mentions rounds in its name; that
// is a per-node table, not a replication loop.
func CrashTable(crashRound []int) int {
	n := 0
	for _, r := range crashRound {
		if r >= 0 {
			n++
		}
	}
	return n
}

// Keep runTrials referenced so the fixture compiles vet-clean.
var _ = runTrials
