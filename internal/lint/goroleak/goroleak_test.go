package goroleak_test

import (
	"testing"

	"liquid/internal/lint/goroleak"
	"liquid/internal/lint/lintest"
)

func TestGoroLeak(t *testing.T) {
	lintest.Run(t, "testdata", goroleak.Analyzer)
}
