// Package goroleak requires every goroutine spawned in internal/ to be
// joinable: the spawning code must be able to observe its completion. The
// evaluation pipeline forks workers per shard and the daemon forks per
// request; a goroutine nobody collects outlives the request that spawned it,
// holds its capture set forever, and turns a bounded service into a slow
// memory leak that only shows up in day-long runs.
//
// A goroutine counts as joined when its body (or, for `go f(...)`, the
// called function) signals completion on some path: a sync.WaitGroup.Done
// call, a channel send or close (the result-collection idiom), a channel
// receive or range (bounded by the sender closing), or observing
// ctx.Done(). Named workers carry that property across package boundaries
// as a Completes object fact, so `go pool.Worker(...)` is fine when
// pool.Worker demonstrably signals, and flagged when it cannot. The check
// is an existence heuristic — it asks whether any completion signal exists,
// not whether every path reaches one — so it never flags a collectable
// goroutine, at the cost of trusting signals on cold paths.
package goroleak

import (
	"go/ast"
	"go/types"

	"liquid/internal/lint/analysis"
)

// Analyzer is the goroleak check.
var Analyzer = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "flags go statements whose goroutine is never joined (no WaitGroup, channel, or context signal)",
	Run:       run,
	FactTypes: []analysis.Fact{new(Completes)},
}

// Completes marks a function that signals its own completion — via
// WaitGroup.Done, a channel operation, or a context — so goroutines running
// it can be collected by the spawner.
type Completes struct{}

// AFact marks Completes as a fact.
func (*Completes) AFact() {}

func run(pass *analysis.Pass) error {
	if !analysis.InInternal(pass.Path) {
		return nil
	}

	// Pass 1: which package functions signal completion, directly or through
	// a callee (fixed point over the same-package call graph; cross-package
	// callees answer through their Completes fact).
	completes := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			completes[fn] = signals(pass, fd.Body)
			calls[fn] = callees(pass, fd.Body)
		}
	}
	completesOf := func(fn *types.Func) bool {
		if done, ok := completes[fn]; ok {
			return done
		}
		return pass.ImportObjectFact(fn, &Completes{})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range calls {
			if completes[fn] {
				continue
			}
			for _, c := range cs {
				if completesOf(c) {
					completes[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn, done := range completes {
		if done && analysis.ObjectKey(fn) != "" {
			pass.ExportObjectFact(fn, &Completes{})
		}
	}

	// Pass 2: audit every go statement.
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if joined(pass, g, completesOf) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine is not joined: no WaitGroup.Done, channel operation, or ctx.Done() signal on any path; collect it or bind it to a checked context")
			return true
		})
	}
	return nil
}

// joined reports whether the goroutine spawned by g is collectable.
func joined(pass *analysis.Pass, g *ast.GoStmt, completesOf func(*types.Func) bool) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if signals(pass, lit.Body) {
			return true
		}
		for _, c := range callees(pass, lit.Body) {
			if completesOf(c) {
				return true
			}
		}
		return false
	}
	fn := staticCallee(pass, g.Call)
	return fn != nil && completesOf(fn)
}

// signals reports whether body contains any completion signal: a channel
// send, receive, close, or range; or a sync.WaitGroup.Done call.
func signals(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.ObjectOf(sel.Sel).(*types.Func); ok &&
					fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callees lists the module-internal functions body statically calls.
func callees(pass *analysis.Pass, body ast.Node) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pass, call); fn != nil && fn.Pkg() != nil && analysis.InInternal(fn.Pkg().Path()) {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// staticCallee resolves a call to its *types.Func, or nil for func values
// and builtins.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
