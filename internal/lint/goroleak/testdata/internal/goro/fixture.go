// Package goro exercises every joining idiom goroleak accepts and seeds the
// leaks it must flag, including a cross-package leak only a missing
// Completes fact can reveal.
package goro

import (
	"context"
	"sync"

	"liquid/internal/worker"
)

func collected() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()

	ch := make(chan int, 3)
	go func() { ch <- 1 }()
	go worker.Pump(ch)
	go worker.Relay(ch)
	<-ch
	<-ch
	<-ch
}

func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func drains(in <-chan int) {
	go func() {
		for range in {
		}
	}()
}

func namedLocal() {
	done := make(chan struct{})
	go announce(done)
	<-done
}

// announce closes its channel: a local named worker with a signal.
func announce(done chan struct{}) {
	close(done)
}

func leaks() {
	go func() { // want `not joined`
		n := 0
		for {
			n++
		}
	}()
	go worker.Spin() // want `not joined`
}

func leaksFuncValue(f func()) {
	go f() // want `not joined`
}
