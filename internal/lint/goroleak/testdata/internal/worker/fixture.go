// Package worker is the dependency side of the goroleak fixture: dependents
// spawn these functions as goroutines and the analyzer must judge them by
// their Completes facts alone.
package worker

// Pump sends its result on out, so it earns a Completes fact.
func Pump(out chan<- int) {
	out <- 1
}

// Relay completes indirectly: its only signal is through Pump.
func Relay(out chan<- int) {
	Pump(out)
}

// Spin never signals anyone; spawning it is a leak wherever it happens.
func Spin() {
	n := 0
	for {
		n++
	}
}
