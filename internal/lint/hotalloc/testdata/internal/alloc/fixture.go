// Package alloc is the dependency side of the hotalloc fixture: one callee
// that allocates and one that is clean, judged from the hot package purely
// through Allocates facts.
package alloc

// Grow allocates: the append earns it an Allocates fact.
func Grow(xs []int) []int {
	return append(xs, 1)
}

// Chain allocates only transitively, through Grow.
func Chain(xs []int) []int {
	return Grow(xs)
}

// Fma is allocation-free and exports no fact.
func Fma(a, b, c float64) float64 {
	return a*b + c
}
