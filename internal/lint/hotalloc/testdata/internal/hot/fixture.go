// Package hot exercises every construct hotalloc flags inside annotated
// functions, plus the cross-package callee checks in both directions.
package hot

import "liquid/internal/alloc"

// kernel is hot and clean: pure arithmetic over preallocated buffers, and
// its only callee is allocation-free by fact.
//
//lint:hotpath
func kernel(dst, src []float64) {
	for i := range dst {
		dst[i] = alloc.Fma(dst[i], 2, src[i])
	}
}

//lint:hotpath
func bad(dst []float64, n int) []float64 {
	buf := make([]float64, n) // want `make allocates`
	tmp := []float64{1, 2}    // want `slice literal allocates`
	dst = append(dst, tmp...) // want `append may grow`
	copy(dst, buf)
	return dst
}

//lint:hotpath
func escapes(n int) *int {
	type box struct{ v int }
	b := &box{v: n} // want `escaping composite`
	return &b.v
}

//lint:hotpath
func closure(n int) func() int {
	f := func() int { return n } // want `closure captures`
	return f
}

//lint:hotpath
func boxed(v float64) any {
	return v // want `boxes a concrete value`
}

//lint:hotpath
func callsAllocator(xs []int) []int {
	return alloc.Grow(xs) // want `calls alloc.Grow, which allocates`
}

//lint:hotpath
func callsChain(xs []int) []int {
	return alloc.Chain(xs) // want `calls alloc.Chain, which allocates`
}

//lint:hotpath
func callsLocalAllocator(n int) []int {
	return helper(n) // want `calls hot.helper, which allocates`
}

// helper allocates; it is flagged only at hot call sites, never here.
func helper(n int) []int {
	return make([]int, n)
}

// unannotated may allocate freely.
func unannotated() []int {
	return append([]int{}, 1)
}
