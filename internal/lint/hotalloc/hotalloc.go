// Package hotalloc keeps annotated hot paths allocation-free. The inner
// kernels — FFT butterflies, convolution dynamic programs, the recycler's
// summation loops — run millions of times per evaluation sweep; one heap
// allocation inside them turns a memory-bandwidth-bound loop into a GC
// benchmark. Escape analysis is invisible in review: an innocent-looking
// append or closure compiles fine and costs 30% at runtime.
//
// Functions opt in with a //lint:hotpath line in their doc comment. Inside
// an annotated function the analyzer flags the constructs that heap-allocate
// or are likely to: make/new calls, slice and map composite literals,
// &T{...} escapes, append growth, closures that capture variables, and
// concrete-to-interface conversions (boxing) at call and return sites.
// Callees are cross-checked interprocedurally: every internal function that
// allocates — directly or through its own callees — carries an Allocates
// fact, so a hot function calling a helper three packages away is flagged at
// the call site when the helper allocates, and accepted when the whole
// callee cone is clean. Standard-library callees carry no facts and are
// trusted; hot kernels call math and nothing else.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"liquid/internal/lint/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "forbids heap allocation in //lint:hotpath functions, cross-checked against callee Allocates facts",
	Run:       run,
	FactTypes: []analysis.Fact{new(Allocates)},
}

// Allocates marks a function that may heap-allocate, directly or through a
// callee. Reason describes the first allocation site, for call-site
// diagnostics in dependent packages.
type Allocates struct {
	Reason string `json:"reason"`
}

// AFact marks Allocates as a fact.
func (*Allocates) AFact() {}

// site is one allocating construct inside a function.
type site struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) error {
	if !analysis.InInternal(pass.Path) {
		return nil
	}

	// Pass 1: direct allocation sites and internal callees per function.
	type funcInfo struct {
		decl  *ast.FuncDecl
		sites []site
		calls []callSite
	}
	infos := make(map[*types.Func]*funcInfo)
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			infos[fn] = &funcInfo{decl: fd, sites: directSites(pass, fd), calls: internalCalls(pass, fd.Body)}
			order = append(order, fn)
		}
	}

	// Pass 2: propagate "may allocate" through the call graph to a fixed
	// point. A function allocates when it has a direct site or any internal
	// callee allocates; cross-package callees answer via their fact.
	reason := make(map[*types.Func]string, len(infos))
	for fn, info := range infos {
		if len(info.sites) > 0 {
			reason[fn] = info.sites[0].what
		}
	}
	reasonOf := func(fn *types.Func) (string, bool) {
		if r, ok := reason[fn]; ok {
			return r, ok
		}
		if _, local := infos[fn]; local {
			return "", false
		}
		var fact Allocates
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Reason, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			if _, done := reason[fn]; done {
				continue
			}
			for _, c := range info.calls {
				if _, allocs := reasonOf(c.fn); allocs {
					reason[fn] = fmt.Sprintf("calls %s", calleeName(c.fn))
					changed = true
					break
				}
			}
		}
	}
	for fn, r := range reason {
		if analysis.ObjectKey(fn) != "" {
			pass.ExportObjectFact(fn, &Allocates{Reason: r})
		}
	}

	// Pass 3: report inside annotated functions only.
	for _, fn := range order {
		info := infos[fn]
		if !analysis.HasHotpath(info.decl) {
			continue
		}
		for _, s := range info.sites {
			pass.Reportf(s.pos, "%s in a //lint:hotpath function; hoist the allocation out of the hot loop", s.what)
		}
		for _, c := range info.calls {
			if r, allocs := reasonOf(c.fn); allocs {
				pass.Reportf(c.pos, "calls %s, which allocates (%s), in a //lint:hotpath function", calleeName(c.fn), r)
			}
		}
	}
	return nil
}

// calleeName renders a callee as pkgtail.Name for diagnostics.
func calleeName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	tail := analysis.PackageTail(fn.Pkg().Path())
	if tail == "" {
		tail = fn.Pkg().Name()
	}
	return tail + "." + fn.Name()
}

// directSites walks a function declaration and records every construct that
// heap-allocates (or plausibly does).
func directSites(pass *analysis.Pass, fd *ast.FuncDecl) []site {
	var out []site
	add := func(pos token.Pos, what string) {
		out = append(out, site{pos: pos, what: what})
	}
	var results *types.Tuple
	if sig, ok := pass.Info.ObjectOf(fd.Name).(*types.Func); ok {
		results = sig.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					switch id.Name {
					case "append":
						add(x.Pos(), "append may grow the backing array")
					case "make":
						add(x.Pos(), "make allocates")
					case "new":
						add(x.Pos(), "new allocates")
					}
					return true
				}
			}
			boxingSites(pass, x, add)
		case *ast.CompositeLit:
			if t := pass.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(x.Pos(), "slice literal allocates")
				case *types.Map:
					add(x.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isComposite := x.X.(*ast.CompositeLit); isComposite {
					add(x.Pos(), "escaping composite literal (&T{...})")
				}
			}
		case *ast.FuncLit:
			if captures(pass, x) {
				add(x.Pos(), "closure captures variables")
			}
		case *ast.ReturnStmt:
			if results == nil || len(x.Results) != results.Len() {
				return true
			}
			for i, res := range x.Results {
				if boxes(pass, res, results.At(i).Type()) {
					add(res.Pos(), "return boxes a concrete value into an interface")
				}
			}
		}
		return true
	})
	return out
}

// boxingSites flags call arguments whose concrete value is converted to an
// interface parameter, and conversions T(x) to an interface type.
func boxingSites(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string)) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(pass, call.Args[0], tv.Type) {
			add(call.Pos(), "conversion boxes a concrete value into an interface")
		}
		return
	}
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, arg, pt) {
			add(arg.Pos(), "argument boxes a concrete value into an interface parameter")
		}
	}
}

// boxes reports whether passing expr as target heap-boxes it: the target is
// an interface and the expression's static type is concrete and non-nil.
func boxes(pass *analysis.Pass, expr ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// captures reports whether the function literal references variables
// declared outside it (excluding package-level state, which needs no heap
// cell).
func captures(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return !found
	})
	return found
}

// callSite is one statically resolvable call to a module-internal function.
type callSite struct {
	fn  *types.Func
	pos token.Pos
}

// internalCalls lists body's calls into internal/ packages (including this
// one), the set whose Allocates facts are cross-checked.
func internalCalls(pass *analysis.Pass, body ast.Node) []callSite {
	var out []callSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			fn, _ = pass.Info.ObjectOf(fun).(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = pass.Info.ObjectOf(fun.Sel).(*types.Func)
		}
		if fn != nil && fn.Pkg() != nil && analysis.InInternal(fn.Pkg().Path()) {
			out = append(out, callSite{fn: fn, pos: call.Pos()})
		}
		return true
	})
	return out
}
