package hotalloc_test

import (
	"testing"

	"liquid/internal/lint/hotalloc"
	"liquid/internal/lint/lintest"
)

func TestHotAlloc(t *testing.T) {
	lintest.Run(t, "testdata", hotalloc.Analyzer)
}
