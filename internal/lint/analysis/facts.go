package analysis

// Facts are how one package's analysis informs another's. An analyzer
// attaches a Fact to a package-level object (a function, method, or
// package-scope var) or to the package itself; when a dependent package is
// analyzed later — the driver feeds packages in dependency order — the
// analyzer imports those facts and reasons interprocedurally without
// re-walking the dependency's source. This is a stdlib-only rendition of
// golang.org/x/tools/go/analysis facts: keys are stable textual object
// paths rather than types.Object identity, because a dependent package sees
// its imports through export data, where object identities differ but
// names do not.
//
// Facts serialize to JSON per package (see FactStore.EncodePackage), which
// is what cmd/liquidlint's cache persists, keyed on content hashes.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum attached to an object or package. Implementations must be
// pointer-to-struct, JSON-serializable, and registered through the owning
// Analyzer's FactTypes so the cache can round-trip them by name.
type Fact interface {
	// AFact is a marker method: it does nothing, it only makes the fact
	// types of the suite enumerable and keeps arbitrary values out of the
	// store.
	AFact()
}

// factKey identifies one stored fact: the defining package, the object's
// path within it ("" for package-level facts), and the registered fact type
// name.
type factKey struct {
	pkg string
	obj string
	typ string
}

// FactStore accumulates facts across one analysis run. A single store is
// shared by every analyzer and every package in the run; analyzer-distinct
// fact types keep entries from colliding.
type FactStore struct {
	facts map[factKey]Fact
	types map[string]reflect.Type
}

// NewFactStore returns an empty store with the fact types of analyzers
// registered.
func NewFactStore(analyzers []*Analyzer) *FactStore {
	s := &FactStore{
		facts: make(map[factKey]Fact),
		types: make(map[string]reflect.Type),
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			s.types[factTypeName(f)] = reflect.TypeOf(f).Elem()
		}
	}
	return s
}

// factTypeName derives the registry name of a fact's dynamic type,
// e.g. "lockorder.Acquires".
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return fmt.Sprintf("%s.%s", pathTail(t.PkgPath()), t.Name())
}

func pathTail(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// ObjectKey returns the stable textual path of a package-level object:
// "Name" for functions and vars, "Recv.Name" for methods (pointer receivers
// and value receivers share a key — lock identity and call taint do not
// care). It returns "" for objects facts cannot attach to (locals, fields,
// imported package names).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				return named.Obj().Name() + "." + o.Name()
			}
			return ""
		}
		return o.Name()
	case *types.Var:
		if o.IsField() || o.Pkg().Scope().Lookup(o.Name()) != o {
			return ""
		}
		return o.Name()
	}
	return ""
}

// exportObject records fact f for obj. Unsupported objects are ignored.
func (s *FactStore) exportObject(obj types.Object, f Fact) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	s.facts[factKey{pkg: obj.Pkg().Path(), obj: key, typ: factTypeName(f)}] = f
}

// importObject copies the stored fact for obj into f, reporting whether one
// existed.
func (s *FactStore) importObject(obj types.Object, f Fact) bool {
	key := ObjectKey(obj)
	if key == "" || obj.Pkg() == nil {
		return false
	}
	return s.copyInto(factKey{pkg: obj.Pkg().Path(), obj: key, typ: factTypeName(f)}, f)
}

func (s *FactStore) copyInto(k factKey, f Fact) bool {
	stored, ok := s.facts[k]
	if !ok {
		return false
	}
	dst := reflect.ValueOf(f)
	src := reflect.ValueOf(stored)
	if dst.Kind() != reflect.Pointer || src.Kind() != reflect.Pointer || dst.Type() != src.Type() {
		return false
	}
	dst.Elem().Set(src.Elem())
	return true
}

// encodedFact is the serialized form of one fact.
type encodedFact struct {
	Object string          `json:"object,omitempty"`
	Type   string          `json:"type"`
	Data   json.RawMessage `json:"data"`
}

// EncodePackage serializes every fact attached to path (object and package
// facts alike), sorted for byte-stable output.
func (s *FactStore) EncodePackage(path string) ([]byte, error) {
	var out []encodedFact
	for k, f := range s.facts {
		if k.pkg != path {
			continue
		}
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("encoding fact %s on %s.%s: %w", k.typ, k.pkg, k.obj, err)
		}
		out = append(out, encodedFact{Object: k.obj, Type: k.typ, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Type < out[j].Type
	})
	return json.Marshal(out)
}

// DecodePackage loads facts previously produced by EncodePackage back into
// the store under path. Unknown fact types are an error: they mean the
// cache was written by a different analyzer suite and must not be trusted.
func (s *FactStore) DecodePackage(path string, data []byte) error {
	if len(data) == 0 {
		return nil // a package with no facts is a valid fast path
	}
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", path, err)
	}
	for _, ef := range in {
		rt, ok := s.types[ef.Type]
		if !ok {
			return fmt.Errorf("decoding facts for %s: unregistered fact type %q", path, ef.Type)
		}
		fv := reflect.New(rt)
		if err := json.Unmarshal(ef.Data, fv.Interface()); err != nil {
			return fmt.Errorf("decoding fact %s for %s: %w", ef.Type, path, err)
		}
		f, ok := fv.Interface().(Fact)
		if !ok {
			return fmt.Errorf("decoding facts for %s: %q does not implement Fact", path, ef.Type)
		}
		s.facts[factKey{pkg: path, obj: ef.Object, typ: ef.Type}] = f
	}
	return nil
}
