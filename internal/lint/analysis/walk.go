package analysis

import "go/ast"

// WithStack walks the AST rooted at root, calling fn for every node with the
// stack of its ancestors (outermost first, excluding n itself). Returning
// false prunes the subtree below n.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost function body on the stack: the body
// of a FuncDecl or FuncLit ancestor, or nil when the node is not inside a
// function.
func EnclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}
