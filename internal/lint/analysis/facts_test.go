package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// markFact marks a function as interesting for the fake taint analyzer.
type markFact struct {
	Note string `json:"note"`
}

func (*markFact) AFact() {}

// typeCheckedTarget parses and type-checks src as one package.
func typeCheckedTarget(t *testing.T, path, src string, imports ...string) *Target {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	pkg, _ := conf.Check(path, fset, []*ast.File{f}, info)
	return &Target{Path: path, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info, Imports: imports}
}

// TestObjectFactRoundTrip drives the store through the Pass API: an
// analyzer exports a fact on a function in one package; the fact is
// importable by key and survives an encode/decode cycle, which is what the
// driver cache depends on.
func TestObjectFactRoundTrip(t *testing.T) {
	tgt := typeCheckedTarget(t, "liquid/internal/fakedep", `package fakedep

func Tainted() {}

func Clean() {}
`)
	suite := []*Analyzer{{
		Name:      "marker",
		Doc:       "marks Tainted",
		FactTypes: []Fact{new(markFact)},
		Run: func(pass *Pass) error {
			obj := pass.Pkg.Scope().Lookup("Tainted")
			if obj == nil {
				t.Fatal("Tainted not in scope")
			}
			pass.ExportObjectFact(obj, &markFact{Note: "observed"})
			return nil
		},
	}}
	store := NewFactStore(suite)
	if _, err := RunPackage(tgt, suite, store); err != nil {
		t.Fatal(err)
	}

	obj := tgt.Pkg.Scope().Lookup("Tainted")
	var got markFact
	if !store.importObject(obj, &got) || got.Note != "observed" {
		t.Fatalf("fact not importable after export: %+v", got)
	}
	if store.importObject(tgt.Pkg.Scope().Lookup("Clean"), new(markFact)) {
		t.Fatal("Clean must carry no fact")
	}

	// Round-trip through the serialized form into a fresh store.
	blob, err := store.EncodePackage("liquid/internal/fakedep")
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewFactStore(suite)
	if err := fresh.DecodePackage("liquid/internal/fakedep", blob); err != nil {
		t.Fatal(err)
	}
	var reloaded markFact
	if !fresh.importObject(obj, &reloaded) || reloaded.Note != "observed" {
		t.Fatalf("fact lost in encode/decode: %+v", reloaded)
	}
}

// TestDecodeUnknownFactType: a cache written by a different suite must be
// rejected, not silently dropped.
func TestDecodeUnknownFactType(t *testing.T) {
	store := NewFactStore(nil)
	err := store.DecodePackage("p", []byte(`[{"object":"F","type":"nosuch.Fact","data":{}}]`))
	if err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("want unregistered-fact-type error, got %v", err)
	}
}

// TestDecodeCorruptFacts: malformed JSON is an error the caller can treat
// as a cache miss.
func TestDecodeCorruptFacts(t *testing.T) {
	store := NewFactStore(nil)
	if err := store.DecodePackage("p", []byte(`{not json`)); err == nil {
		t.Fatal("corrupt fact blob decoded")
	}
}

// TestPackageFactAcrossTargets: a package fact exported while analyzing a
// dependency is importable from a dependent package's pass.
func TestPackageFactAcrossTargets(t *testing.T) {
	dep := typeCheckedTarget(t, "liquid/internal/fakedep", `package fakedep

func F() {}
`)
	top := typeCheckedTarget(t, "liquid/internal/faketop", `package faketop

func G() {}
`, "liquid/internal/fakedep")

	var sawNote string
	suite := []*Analyzer{{
		Name:      "pkgfact",
		Doc:       "exports a package fact from the dep, imports it above",
		FactTypes: []Fact{new(markFact)},
		Run: func(pass *Pass) error {
			switch pass.Path {
			case "liquid/internal/fakedep":
				pass.ExportPackageFact(&markFact{Note: "from-dep"})
			case "liquid/internal/faketop":
				for _, imp := range pass.Imports {
					var f markFact
					if pass.ImportPackageFact(imp, &f) {
						sawNote = f.Note
					}
				}
			}
			return nil
		},
	}}
	if _, err := Run([]*Target{dep, top}, suite); err != nil {
		t.Fatal(err)
	}
	if sawNote != "from-dep" {
		t.Fatalf("package fact did not cross the dependency edge: %q", sawNote)
	}
}

// TestObjectKeyShapes pins the key grammar: plain functions, methods
// (pointer and value receivers sharing a key), package vars; fields and
// locals yield no key.
func TestObjectKeyShapes(t *testing.T) {
	tgt := typeCheckedTarget(t, "liquid/internal/fakekeys", `package fakekeys

type T struct{ f int }

func F() {}

func (t *T) M() {}

func (t T) V() {}

var X int
`)
	scope := tgt.Pkg.Scope()
	if got := ObjectKey(scope.Lookup("F")); got != "F" {
		t.Errorf("func key = %q, want F", got)
	}
	named := scope.Lookup("T").Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		want := "T." + m.Name()
		if got := ObjectKey(m); got != want {
			t.Errorf("method key = %q, want %q", got, want)
		}
	}
	if got := ObjectKey(scope.Lookup("X")); got != "X" {
		t.Errorf("var key = %q, want X", got)
	}
	field := named.Underlying().(*types.Struct).Field(0)
	if got := ObjectKey(field); got != "" {
		t.Errorf("field key = %q, want empty", got)
	}
}
