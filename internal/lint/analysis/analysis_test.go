package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fakeAnalyzer reports one diagnostic on every function declaration.
var fakeAnalyzer = &Analyzer{
	Name: "fake",
	Doc:  "flags every function",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func parseTarget(t *testing.T, src string) *Target {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Target{Path: "liquid/internal/fake", Fset: fset, Files: []*ast.File{f}}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore fake covered by an integration test
func a() {}

func b() {}

func c() {} //lint:ignore fake inline justification
`)
	diags, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "function b") {
		t.Fatalf("want exactly the diagnostic for b, got %v", diags)
	}
}

func TestIgnoreDirectiveWrongAnalyzerKept(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore other not this analyzer
func a() {}
`)
	diags, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("directive for another analyzer must not suppress, got %v", diags)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore fake
func a() {}
`)
	diags, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The reasonless directive does not suppress, and is itself flagged.
	var sawMalformed, sawFunc bool
	for _, d := range diags {
		if d.Analyzer == "lintdirective" {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "function a") {
			sawFunc = true
		}
	}
	if !sawMalformed || !sawFunc {
		t.Fatalf("want malformed-directive and function diagnostics, got %v", diags)
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore fake this suppresses nothing
var x = 1
`)
	diags, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" || !strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want one unused-directive diagnostic, got %v", diags)
	}
}

func TestUnusedDirectiveForInactiveAnalyzerSilent(t *testing.T) {
	// A directive naming an analyzer that did not run must not be called
	// dead — under -disable it simply never had its chance to match.
	tgt := parseTarget(t, `package fake

//lint:ignore other the other analyzer is disabled in this run
var x = 1
`)
	diags, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("directive for inactive analyzer must be silent, got %v", diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	tgt := parseTarget(t, `package fake

func b() {}

func a() {}
`)
	diags, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Line >= diags[1].Line {
		t.Fatalf("diagnostics not sorted by line: %v", diags)
	}
}

func TestPackageTail(t *testing.T) {
	cases := []struct{ path, want string }{
		{"liquid/internal/graph", "graph"},
		{"liquid/internal/lint/maporder", "lint/maporder"},
		{"internal/graph", "graph"},
		{"liquid/cmd/reproduce", ""},
		{"fmt", ""},
	}
	for _, c := range cases {
		if got := PackageTail(c.path); got != c.want {
			t.Errorf("PackageTail(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestInInternal(t *testing.T) {
	if !InInternal("liquid/internal/graph") || InInternal("liquid/cmd/reproduce") {
		t.Fatal("InInternal misclassifies")
	}
}
