package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fakeAnalyzer reports one diagnostic on every function declaration.
var fakeAnalyzer = &Analyzer{
	Name: "fake",
	Doc:  "flags every function",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func parseTarget(t *testing.T, src string) *Target {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Target{Path: "liquid/internal/fake", Fset: fset, Files: []*ast.File{f}}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore fake covered by an integration test
func a() {}

func b() {}

func c() {} //lint:ignore fake inline justification
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags := res.Diagnostics
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "function b") {
		t.Fatalf("want exactly the diagnostic for b, got %v", diags)
	}
	if res.Suppressions["fake"] != 2 {
		t.Fatalf("want 2 live fake suppressions, got %v", res.Suppressions)
	}
}

func TestIgnoreDirectiveWrongAnalyzerKept(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore other not this analyzer
func a() {}
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("directive for another analyzer must not suppress, got %v", res.Diagnostics)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore fake
func a() {}
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The reasonless directive does not suppress, and is itself flagged.
	var sawMalformed, sawFunc bool
	for _, d := range res.Diagnostics {
		if d.Analyzer == "lintdirective" {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "function a") {
			sawFunc = true
		}
	}
	if !sawMalformed || !sawFunc {
		t.Fatalf("want malformed-directive and function diagnostics, got %v", res.Diagnostics)
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	tgt := parseTarget(t, `package fake

//lint:ignore fake this suppresses nothing
var x = 1
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags := res.Diagnostics
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" || !strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want one unused-directive diagnostic, got %v", diags)
	}
	if len(res.Suppressions) != 0 {
		t.Fatalf("dead directive must not count as live, got %v", res.Suppressions)
	}
}

func TestUnusedDirectiveForInactiveAnalyzerSilent(t *testing.T) {
	// A directive naming an analyzer that did not run must not be called
	// dead — under -disable it simply never had its chance to match.
	tgt := parseTarget(t, `package fake

//lint:ignore other the other analyzer is disabled in this run
var x = 1
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("directive for inactive analyzer must be silent, got %v", res.Diagnostics)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	tgt := parseTarget(t, `package fake

func b() {}

func a() {}
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags := res.Diagnostics
	if len(diags) != 2 || diags[0].Line >= diags[1].Line {
		t.Fatalf("diagnostics not sorted by line: %v", diags)
	}
}

// stmtAnalyzer flags the closing line of every multi-line call statement:
// the shape of a diagnostic whose position is lines below the statement it
// belongs to.
var stmtAnalyzer = &Analyzer{
	Name: "stmt",
	Doc:  "flags the last argument of multi-line calls",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				last := call.Args[len(call.Args)-1]
				if pass.Fset.Position(call.Pos()).Line != pass.Fset.Position(last.Pos()).Line {
					pass.Reportf(last.Pos(), "deep diagnostic")
				}
				return true
			})
		}
		return nil
	},
}

// TestMultiLineStatementSuppressionNotTooBroad: a directive two lines above
// the statement's first line (above the enclosing func decl, say) still
// does not match — only the statement's first line and the line above it
// count, exactly like the single-line rule.
func TestMultiLineStatementSuppressionNotTooBroad(t *testing.T) {
	tgt := parseTarget(t, `package fake

func sink(a, b int) {}

//lint:ignore stmt too far above the statement to count
func a() {
	sink(
		1,
		2)
}
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{stmtAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The wrapped-call diagnostic survives, and the directive is reported
	// as unused.
	var sawDeep, sawUnused bool
	for _, d := range res.Diagnostics {
		if d.Analyzer == "stmt" {
			sawDeep = true
		}
		if d.Analyzer == "lintdirective" && strings.Contains(d.Message, "unused") {
			sawUnused = true
		}
	}
	if !sawDeep || !sawUnused || len(res.Diagnostics) != 2 {
		t.Fatalf("want the surviving diagnostic plus an unused-directive finding, got %v", res.Diagnostics)
	}
}

// TestMultiLineStatementSuppressionAdjacent pins the intended layouts
// exactly: directive immediately above the statement's first line, and
// directive inline on the first line, both covering a diagnostic two lines
// down.
func TestMultiLineStatementSuppressionAdjacent(t *testing.T) {
	tgt := parseTarget(t, `package fake

func sink(a, b int) {}

func a() {
	//lint:ignore stmt stand-alone directive above a wrapped call
	sink(
		1,
		2)
}

func b() {
	sink( //lint:ignore stmt inline directive on the first line
		3,
		4)
}
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{stmtAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("both wrapped-call diagnostics must be suppressed, got %v", res.Diagnostics)
	}
	if res.Suppressions["stmt"] != 2 {
		t.Fatalf("want 2 live stmt suppressions, got %v", res.Suppressions)
	}
}

// TestMultiLineSuppressionInnermost: only the innermost enclosing
// statement counts. A directive above an enclosing for statement must not
// blanket-suppress a diagnostic that belongs to a narrower statement
// starting further down inside the loop body.
func TestMultiLineSuppressionInnermost(t *testing.T) {
	tgt := parseTarget(t, `package fake

func sink(a, b int) {}

func a() {
	//lint:ignore stmt the loop is fine, says someone too far away
	for i := 0; i < 3; i++ {
		sink(
			1,
			2)
	}
}
`)
	res, err := Run([]*Target{tgt}, []*Analyzer{stmtAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The wrapped call's own first line is two below the directive; the
	// for statement (which the directive is adjacent to) encloses the
	// diagnostic but is not the innermost statement, so the diagnostic
	// survives and the directive is dead.
	var sawDeep, sawUnused bool
	for _, d := range res.Diagnostics {
		if d.Analyzer == "stmt" {
			sawDeep = true
		}
		if d.Analyzer == "lintdirective" && strings.Contains(d.Message, "unused") {
			sawUnused = true
		}
	}
	if !sawDeep || !sawUnused {
		t.Fatalf("want surviving diagnostic plus unused directive, got %v", res.Diagnostics)
	}
}

func TestPackageTail(t *testing.T) {
	cases := []struct{ path, want string }{
		{"liquid/internal/graph", "graph"},
		{"liquid/internal/lint/maporder", "lint/maporder"},
		{"internal/graph", "graph"},
		{"liquid/cmd/reproduce", ""},
		{"fmt", ""},
	}
	for _, c := range cases {
		if got := PackageTail(c.path); got != c.want {
			t.Errorf("PackageTail(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestInInternal(t *testing.T) {
	if !InInternal("liquid/internal/graph") || InInternal("liquid/cmd/reproduce") {
		t.Fatal("InInternal misclassifies")
	}
}
