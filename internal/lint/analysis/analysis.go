// Package analysis is a small, dependency-free subset of the
// golang.org/x/tools/go/analysis framework: just enough structure to write
// the repository's custom static analyzers (see cmd/liquidlint) without
// pulling x/tools into the module.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. Analyzers may also attach Facts to package-level
// objects (and to packages themselves); when the driver feeds packages in
// dependency order — internal/lint/load returns them topologically sorted —
// a dependent package's Pass can import those facts and reason across
// package boundaries (see facts.go). Suppression is uniform across
// analyzers: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line, on the line immediately above it, or on (or above)
// the first line of the multi-line statement containing the flagged
// position, silences the named analyzers there. The reason is mandatory; a
// bare directive is itself reported as a violation so suppressions stay
// auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -disable/-only flags,
	// and lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects a package and reports findings via pass.Report. A nil
	// Run marks a pseudo-analyzer handled by the framework itself
	// (Directive); drivers list it but never invoke it.
	Run func(pass *Pass) error
	// FactTypes lists the fact types this analyzer exports, one zero value
	// per type. Required for facts to round-trip through the driver cache.
	FactTypes []Fact
}

// Directive is the pseudo-analyzer under which the framework reports
// malformed and unused lint:ignore directives. It has no Run of its own —
// directive auditing happens inside RunPackage — but listing it in the
// suite makes the name addressable by -only/-disable and -list.
var Directive = &Analyzer{
	Name: "lintdirective",
	Doc:  "audits lint:ignore directives: reasonless or dead suppressions are findings",
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (e.g. "liquid/internal/graph").
	Path string
	Fset *token.FileSet
	// Files holds the parsed non-test Go files of the package.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports (import paths), for
	// analyzers that aggregate package facts across the dependency edge.
	Imports []string

	report func(Diagnostic)
	facts  *FactStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ExportObjectFact attaches f to the package-level object obj. Objects
// facts cannot attach to (locals, struct fields) are silently skipped.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts != nil {
		p.facts.exportObject(obj, f)
	}
}

// ImportObjectFact copies the fact of f's type attached to obj into f,
// reporting whether one was found. obj may come from export data: facts are
// keyed by the object's textual path, not its identity.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	return p.facts != nil && p.facts.importObject(obj, f)
}

// ExportPackageFact attaches f to the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts != nil {
		p.facts.facts[factKey{pkg: p.Path, typ: factTypeName(f)}] = f
	}
}

// ImportPackageFact copies the package fact of f's type attached to path
// into f, reporting whether one was found.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	return p.facts != nil && p.facts.copyInto(factKey{pkg: path, typ: factTypeName(f)}, f)
}

// Diagnostic is one finding, locatable in the source tree.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Target bundles what a driver needs to analyze one package.
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports; drivers that feed
	// packages in dependency order populate it so package facts can be
	// aggregated edge by edge.
	Imports []string
}

// Result is the outcome of running a suite over one or more packages.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressions counts live lint:ignore directives per analyzer: a
	// directive is live when it suppressed at least one diagnostic of that
	// analyzer in this run. Dead directives are not counted here — they are
	// lintdirective findings instead.
	Suppressions map[string]int
}

// merge folds o into r.
func (r *Result) merge(o *Result) {
	r.Diagnostics = append(r.Diagnostics, o.Diagnostics...)
	for name, n := range o.Suppressions {
		r.Suppressions[name] += n
	}
}

// sortDiagnostics orders diagnostics by position for stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // names, or ["all"]
	hasReason bool
	used      map[string]bool // analyzer names this directive suppressed
}

const ignorePrefix = "//lint:ignore"

// HotpathDirective is the annotation hotalloc keys on: a function whose doc
// comment (or the line above its declaration) carries it must stay free of
// heap allocation. Parsed here so the directive grammar lives in one place.
const HotpathDirective = "//lint:hotpath"

// HasHotpath reports whether fd carries a lint:hotpath annotation in its
// doc comment.
func HasHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, HotpathDirective) {
			return true
		}
	}
	return false
}

// parseIgnores extracts lint:ignore directives from a file's comments.
func parseIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			d := &ignoreDirective{file: pos.Filename, line: pos.Line, used: make(map[string]bool)}
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						d.analyzers = append(d.analyzers, name)
					}
				}
			}
			d.hasReason = len(fields) >= 2
			out = append(out, d)
		}
	}
	return out
}

// matches reports whether the directive covers diag. stmtStart is the first
// line of the innermost multi-line statement containing the diagnostic (0
// when none): a directive on that line, or the line above it, covers
// diagnostics anywhere inside the statement — the flagged expression of a
// wrapped call or composite is often lines below where a suppression can
// syntactically go.
func (d *ignoreDirective) matches(diag Diagnostic, stmtStart int) bool {
	if diag.Pos.Filename != d.file {
		return false
	}
	// A directive covers its own line (inline comment), the line
	// immediately below (stand-alone comment above the flagged statement),
	// and the extent of the statement whose first line it sits on or above.
	covered := diag.Pos.Line == d.line || diag.Pos.Line == d.line+1 ||
		(stmtStart > 0 && (stmtStart == d.line || stmtStart == d.line+1))
	if !covered {
		return false
	}
	for _, name := range d.analyzers {
		if name == "all" || name == diag.Analyzer {
			return true
		}
	}
	return false
}

// stmtStarts indexes the statements of a file by line extent so suppression
// matching can find the statement enclosing a diagnostic.
type stmtStarts struct {
	fset  *token.FileSet
	files map[string]*ast.File
}

func newStmtStarts(fset *token.FileSet, files []*ast.File) *stmtStarts {
	idx := &stmtStarts{fset: fset, files: make(map[string]*ast.File, len(files))}
	for _, f := range files {
		idx.files[fset.Position(f.Pos()).Filename] = f
	}
	return idx
}

// enclosingStart returns the first line of the innermost statement (blocks
// excluded — a block would cover a whole function body) that spans the
// diagnostic's line in its file, or 0 when there is none or the statement
// is single-line.
func (idx *stmtStarts) enclosingStart(d Diagnostic) int {
	f, ok := idx.files[d.Pos.Filename]
	if !ok {
		return 0
	}
	best, bestEnd := 0, 1<<31
	ast.Inspect(f, func(n ast.Node) bool {
		s, isStmt := n.(ast.Stmt)
		if !isStmt {
			return true
		}
		if _, isBlock := s.(*ast.BlockStmt); isBlock {
			return true
		}
		start := idx.fset.Position(s.Pos()).Line
		end := idx.fset.Position(s.End()).Line
		if start == end || d.Pos.Line < start || d.Pos.Line > end {
			return true
		}
		// Innermost wins: latest start, then tightest end.
		if start > best || (start == best && end < bestEnd) {
			best, bestEnd = start, end
		}
		return true
	})
	return best
}

// RunPackage applies analyzers to one package, sharing facts through store
// (which must have been built with NewFactStore over a suite including
// these analyzers). Suppression directives are resolved within the package;
// the returned diagnostics are sorted by position.
func RunPackage(tgt *Target, analyzers []*Analyzer, store *FactStore) (*Result, error) {
	var diags []Diagnostic
	var directives []*ignoreDirective
	for _, f := range tgt.Files {
		directives = append(directives, parseIgnores(tgt.Fset, f)...)
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Path:     tgt.Path,
			Fset:     tgt.Fset,
			Files:    tgt.Files,
			Pkg:      tgt.Pkg,
			Info:     tgt.Info,
			Imports:  tgt.Imports,
			facts:    store,
			report: func(d Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, tgt.Path, err)
		}
	}

	idx := newStmtStarts(tgt.Fset, tgt.Files)
	kept := diags[:0]
	for _, d := range diags {
		stmtStart := idx.enclosingStart(d)
		suppressed := false
		for _, dir := range directives {
			if dir.hasReason && len(dir.analyzers) > 0 && dir.matches(d, stmtStart) {
				dir.used[d.Analyzer] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	result := &Result{Suppressions: make(map[string]int)}
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	for _, dir := range directives {
		if len(dir.analyzers) == 0 || !dir.hasReason {
			kept = append(kept, Diagnostic{
				Analyzer: Directive.Name,
				Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
			})
			continue
		}
		if len(dir.used) > 0 {
			for name := range dir.used {
				result.Suppressions[name]++
			}
			continue
		}
		// Only call a directive dead when every analyzer it names actually
		// ran: under -disable (or single-analyzer fixture runs) a directive
		// for a skipped analyzer may simply not have had its chance.
		ran := true
		for _, name := range dir.analyzers {
			if name != "all" && !active[name] {
				ran = false
				break
			}
		}
		if ran {
			kept = append(kept, Diagnostic{
				Analyzer: Directive.Name,
				Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				Message:  fmt.Sprintf("unused lint:ignore directive (%s): nothing here is flagged; delete it", strings.Join(dir.analyzers, ",")),
			})
		}
	}
	for i := range kept {
		kept[i].File = kept[i].Pos.Filename
		kept[i].Line = kept[i].Pos.Line
		kept[i].Column = kept[i].Pos.Column
	}
	sortDiagnostics(kept)
	result.Diagnostics = kept
	return result, nil
}

// Run applies analyzers to targets — which must be in dependency order for
// cross-package facts to resolve — and returns the surviving diagnostics
// sorted by position plus per-analyzer live-suppression counts.
// lint:ignore directives are honored; malformed or unused directives
// produce their own diagnostics so dead suppressions get cleaned up rather
// than rotting.
func Run(targets []*Target, analyzers []*Analyzer) (*Result, error) {
	store := NewFactStore(analyzers)
	total := &Result{Suppressions: make(map[string]int)}
	for _, tgt := range targets {
		r, err := RunPackage(tgt, analyzers, store)
		if err != nil {
			return nil, err
		}
		total.merge(r)
	}
	sortDiagnostics(total.Diagnostics)
	return total, nil
}

// PackageTail returns the path segment(s) after the last "internal/"
// element, or "" when the path has no internal element. Analyzers use it to
// scope themselves by package identity independent of the module name, so
// the same scoping works for "liquid/internal/graph" and for fixture
// modules in testdata.
func PackageTail(path string) string {
	const marker = "internal/"
	i := strings.LastIndex(path, marker)
	if i < 0 {
		if path == "internal" {
			return ""
		}
		return ""
	}
	return path[i+len(marker):]
}

// InInternal reports whether the import path is under an internal/ tree.
func InInternal(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}
