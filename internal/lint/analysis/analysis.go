// Package analysis is a small, dependency-free subset of the
// golang.org/x/tools/go/analysis framework: just enough structure to write
// the repository's custom static analyzers (see cmd/liquidlint) without
// pulling x/tools into the module.
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. Suppression is uniform across analyzers: a comment of
// the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line, or on the line immediately above it, silences the
// named analyzers there. The reason is mandatory; a bare directive is itself
// reported as a violation so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -disable flags, and
	// lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects a package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (e.g. "liquid/internal/graph").
	Path string
	Fset *token.FileSet
	// Files holds the parsed non-test Go files of the package.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Diagnostic is one finding, locatable in the source tree.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Target bundles what a driver needs to analyze one package.
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // names, or ["all"]
	hasReason bool
	used      bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts lint:ignore directives from a file's comments.
func parseIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			d := &ignoreDirective{file: pos.Filename, line: pos.Line}
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						d.analyzers = append(d.analyzers, name)
					}
				}
			}
			d.hasReason = len(fields) >= 2
			out = append(out, d)
		}
	}
	return out
}

func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file {
		return false
	}
	// A directive covers its own line (inline comment) and the line
	// immediately below (stand-alone comment above the flagged statement).
	if diag.Pos.Line != d.line && diag.Pos.Line != d.line+1 {
		return false
	}
	for _, name := range d.analyzers {
		if name == "all" || name == diag.Analyzer {
			return true
		}
	}
	return false
}

// Run applies analyzers to targets and returns the surviving diagnostics
// sorted by position. lint:ignore directives are honored; malformed or
// unused directives produce their own diagnostics so dead suppressions get
// cleaned up rather than rotting.
func Run(targets []*Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var directives []*ignoreDirective
	for _, tgt := range targets {
		for _, f := range tgt.Files {
			directives = append(directives, parseIgnores(tgt.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     tgt.Path,
				Fset:     tgt.Fset,
				Files:    tgt.Files,
				Pkg:      tgt.Pkg,
				Info:     tgt.Info,
				report: func(d Diagnostic) {
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, tgt.Path, err)
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.hasReason && len(dir.analyzers) > 0 && dir.matches(d) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	for _, dir := range directives {
		if len(dir.analyzers) == 0 || !dir.hasReason {
			kept = append(kept, Diagnostic{
				Analyzer: "lintdirective",
				Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
			})
			continue
		}
		if dir.used {
			continue
		}
		// Only call a directive dead when every analyzer it names actually
		// ran: under -disable (or single-analyzer fixture runs) a directive
		// for a skipped analyzer may simply not have had its chance.
		ran := true
		for _, name := range dir.analyzers {
			if name != "all" && !active[name] {
				ran = false
				break
			}
		}
		if ran {
			kept = append(kept, Diagnostic{
				Analyzer: "lintdirective",
				Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				Message:  fmt.Sprintf("unused lint:ignore directive (%s): nothing here is flagged; delete it", strings.Join(dir.analyzers, ",")),
			})
		}
	}
	for i := range kept {
		kept[i].File = kept[i].Pos.Filename
		kept[i].Line = kept[i].Pos.Line
		kept[i].Column = kept[i].Pos.Column
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// PackageTail returns the path segment(s) after the last "internal/"
// element, or "" when the path has no internal element. Analyzers use it to
// scope themselves by package identity independent of the module name, so
// the same scoping works for "liquid/internal/graph" and for fixture
// modules in testdata.
func PackageTail(path string) string {
	const marker = "internal/"
	i := strings.LastIndex(path, marker)
	if i < 0 {
		if path == "internal" {
			return ""
		}
		return ""
	}
	return path[i+len(marker):]
}

// InInternal reports whether the import path is under an internal/ tree.
func InInternal(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}
