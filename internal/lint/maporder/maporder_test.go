package maporder_test

import (
	"testing"

	"liquid/internal/lint/lintest"
	"liquid/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	lintest.Run(t, "testdata", maporder.Analyzer)
}
