// Package maporder flags `for … range` loops over map types whose bodies can
// observe Go's randomized map iteration order. This is the repository's most
// expensive latent-bug class: two independent nondeterminism bugs (the
// BarabasiAlbert edge-insertion order and the reliable-convergecast
// retransmission order) were each introduced through an innocent-looking map
// range and only surfaced as byte-level divergence between worker counts.
//
// A map range is accepted without complaint when its body is provably
// order-insensitive:
//
//   - it only builds other maps/sets (m2[k] = v, delete(m2, k)),
//   - it only counts or flags (integer ++/+=, boolean |=),
//   - it writes distinct slots of a slice indexed by the range key,
//   - it tracks an extremum via the `if x > best { best = x }` idiom,
//   - it early-exits with constant results (the any/all idiom), or
//   - it collects keys/values into a slice that is explicitly sorted after
//     the loop (the sort.Slice-after-collect idiom).
//
// Everything else is reported. Intentional exceptions carry
// //lint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"liquid/internal/lint/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops whose bodies depend on map iteration order",
	Run:  run,
}

// scope lists the internal packages whose determinism feeds
// reproduce_output.txt; map-order nondeterminism anywhere here can diverge
// the suite across worker counts.
var scope = map[string]bool{
	"graph":      true,
	"election":   true,
	"localsim":   true,
	"fault":      true,
	"experiment": true,
	"recycle":    true,
	"dynamics":   true,
	"adaptive":   true,
}

func inScope(path string) bool {
	tail := analysis.PackageTail(path)
	if tail == "" {
		return false
	}
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		tail = tail[:i]
	}
	return scope[tail]
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			check(pass, rs, analysis.EnclosingFunc(stack))
			return true
		})
	}
	return nil
}

// check reports rs unless its body is order-insensitive.
func check(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	c := &checker{pass: pass}
	if !c.stmtsOK(rs.Body.List) {
		pass.Reportf(rs.For, "range over map has scheduling-dependent iteration order; sort the keys before use, restructure onto a slice, or annotate with //lint:ignore maporder <reason>")
		return
	}
	for _, target := range c.collected {
		if fnBody == nil || !sortedAfter(pass, fnBody, rs, target) {
			pass.Reportf(rs.For, "slice %s collected from map range is used without sorting; call sort/slices on it after the loop (collect-then-sort) or annotate with //lint:ignore maporder <reason>", target.Name)
		}
	}
}

type checker struct {
	pass *analysis.Pass
	// collected holds slices appended to inside the loop; each must be
	// sorted after the loop for the range to count as order-insensitive.
	collected []*ast.Ident
}

func (c *checker) stmtsOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.stmtOK(s, nil) {
			return false
		}
	}
	return true
}

// stmtOK reports whether s cannot observe iteration order. extremum carries
// the identifiers mentioned by an enclosing if-condition, enabling the
// `if x > best { best = x }` idiom.
func (c *checker) stmtOK(s ast.Stmt, extremum map[types.Object]bool) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.AssignStmt:
		return c.assignOK(s, extremum)
	case *ast.IncDecStmt:
		return isIntegral(c.pass.TypeOf(s.X))
	case *ast.DeclStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.ReturnStmt:
		// Early exit is order-insensitive only when the results carry no
		// information about which key was reached first (any/all idiom).
		for _, r := range s.Results {
			if !isConstExpr(r) {
				return false
			}
		}
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
			return true
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init, extremum) {
			return false
		}
		ext := condIdents(c.pass, s.Cond)
		for o := range extremum {
			ext[o] = true
		}
		if !c.blockOK(s.Body, ext) {
			return false
		}
		return c.stmtOK(s.Else, extremum)
	case *ast.BlockStmt:
		return c.blockOK(s, extremum)
	case *ast.RangeStmt:
		return c.blockOK(s.Body, extremum)
	case *ast.ForStmt:
		if !c.stmtOK(s.Init, extremum) || !c.stmtOK(s.Post, extremum) {
			return false
		}
		return c.blockOK(s.Body, extremum)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, cs := range cl.Body {
					if !c.stmtOK(cs, extremum) {
						return false
					}
				}
			}
		}
		return true
	default:
		return false
	}
}

func (c *checker) blockOK(b *ast.BlockStmt, extremum map[types.Object]bool) bool {
	for _, s := range b.List {
		if !c.stmtOK(s, extremum) {
			return false
		}
	}
	return true
}

func (c *checker) assignOK(s *ast.AssignStmt, extremum map[types.Object]bool) bool {
	switch s.Tok {
	case token.DEFINE:
		// New locals only feed later statements, which are checked on their
		// own; defining them observes nothing.
		return true
	case token.ASSIGN:
		// xs = append(xs, …) starts the collect-then-sort idiom.
		if id, ok := appendTarget(s); ok {
			c.collected = append(c.collected, id)
			return true
		}
		for _, lhs := range s.Lhs {
			if !c.lvalueOK(lhs, extremum) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation is order-insensitive for integers and
		// booleans; float rounding is not.
		for _, lhs := range s.Lhs {
			t := c.pass.TypeOf(lhs)
			if !isIntegral(t) && !isBool(t) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// lvalueOK reports whether assigning through lhs is order-insensitive: a
// blank, a map slot, a slice slot keyed by something (distinct-slot write),
// or an extremum variable named in the guarding condition.
func (c *checker) lvalueOK(lhs ast.Expr, extremum map[types.Object]bool) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		if obj := c.pass.Info.ObjectOf(lhs); obj != nil && extremum[obj] {
			return true
		}
		return false
	case *ast.IndexExpr:
		if t := c.pass.TypeOf(lhs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true
			}
		}
		// Writing out[k] for the range key k touches a distinct slot per
		// iteration; the final contents are order-independent.
		return true
	default:
		return false
	}
}

// appendTarget matches `xs = append(xs, …)` and returns xs.
func appendTarget(s *ast.AssignStmt) (*ast.Ident, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil, false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != id.Name {
		return nil, false
	}
	return id, true
}

// condIdents collects the objects of plain identifiers mentioned in cond.
func condIdents(pass *analysis.Pass, cond ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if cond == nil {
		return out
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether target is passed to a sorting call after rs
// within fnBody.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.Info.ObjectOf(target)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ok := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, isID := an.(*ast.Ident); isID && pass.Info.ObjectOf(id) == obj {
					ok = true
				}
				return !ok
			})
			if ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.*, slices.Sort*, and local helpers whose name
// mentions sorting.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			if pn, isPkg := pass.Info.ObjectOf(x).(*types.PkgName); isPkg {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
		return strings.Contains(strings.ToLower(fn.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fn.Name), "sort")
	}
	return false
}

func isIntegral(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return b.Info()&types.IsInteger != 0
}

func isBool(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// isConstExpr reports whether e is a literal or true/false/nil.
func isConstExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "true" || e.Name == "false" || e.Name == "nil"
	case *ast.UnaryExpr:
		return isConstExpr(e.X)
	}
	return false
}
