// Package graph is a maporder fixture: each function isolates one accepted
// idiom or one violation. The package path mirrors the real tree so the
// analyzer's scoping applies.
package graph

import "sort"

// CollectNoSort leaks map iteration order into its result.
func CollectNoSort(m map[int]int) []int {
	var out []int
	for k := range m { // want `collected from map range is used without sorting`
		out = append(out, k)
	}
	return out
}

// CollectSort is the blessed collect-then-sort idiom.
func CollectSort(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// CollectSortSlice uses sort.Slice with the collected slice in a closure arg.
func CollectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// BuildSet only writes another map; order cannot be observed.
func BuildSet(m map[int]int) map[int]bool {
	set := make(map[int]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return set
}

// Count only counts; integer addition commutes.
func Count(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// FloatSum accumulates floats, whose rounding depends on iteration order.
func FloatSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `scheduling-dependent iteration order`
		s += v
	}
	return s
}

// FirstKey returns whichever key the runtime happens to yield first.
func FirstKey(m map[int]int) int {
	for k := range m { // want `scheduling-dependent iteration order`
		return k
	}
	return -1
}

// HasNegative is the any-idiom: constant results carry no order information.
func HasNegative(m map[int]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// MaxValue tracks an extremum guarded by its own comparison.
func MaxValue(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// ArgMax remembers *which* key achieved the extremum: ties break by order.
func ArgMax(m map[int]int) int {
	best, arg := 0, -1
	for k, v := range m { // want `scheduling-dependent iteration order`
		if v > best {
			best = v
			arg = k
		}
	}
	return arg
}

// Fill writes one distinct slot per key; final contents are order-free.
func Fill(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] = v
	}
}

// Drain deletes from another map, which commutes.
func Drain(m map[int]int, other map[int]int) {
	for k := range m {
		delete(other, k)
	}
}

// Ignored shows the justified-suppression escape hatch.
func Ignored(m map[int]int) []int {
	var out []int
	//lint:ignore maporder order is re-established by the caller before use
	for k := range m {
		out = append(out, k)
	}
	return out
}
