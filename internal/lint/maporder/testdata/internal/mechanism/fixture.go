// Package mechanism is outside maporder's scope: identical code to a
// violation draws no diagnostic here.
package mechanism

// CollectNoSort would be flagged in a scoped package.
func CollectNoSort(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
