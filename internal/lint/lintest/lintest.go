// Package lintest runs an analyzer over a fixture module and checks its
// diagnostics against // want comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest (which the module deliberately
// does not depend on).
//
// A fixture is a self-contained Go module rooted at <analyzer>/testdata,
// conventionally named `module liquid` so that packages placed under
// testdata/internal/... land in the analyzers' scope exactly like the real
// tree. Expectations are written on the offending line:
//
//	for k := range m { // want `scheduling-dependent`
//
// The quoted text (backquotes or double quotes) is a regexp matched against
// the diagnostic message; several expectations may share a line. The run
// fails on any unexpected diagnostic and on any unmatched expectation, so a
// fixture fails both when the analyzer goes quiet and when it over-reports.
package lintest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"liquid/internal/lint/analysis"
	"liquid/internal/lint/load"
)

// expectation is one parsed // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture module at dir and applies a, comparing diagnostics
// with // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	var targets []*analysis.Target
	var wants []*expectation
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.ImportPath, e)
		}
		targets = append(targets, &analysis.Target{
			Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info,
		})
		for _, f := range p.Files {
			ws, err := parseWants(p.Fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}
	diags, err := analysis.Run(targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// parseWants extracts // want expectations from a file's comments.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := c.Text[idx+len("// want "):]
			ms := wantRE.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed // want: no quoted pattern in %q", pos.Filename, pos.Line, rest)
			}
			for _, m := range ms {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad // want pattern %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out, nil
}
