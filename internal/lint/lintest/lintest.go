// Package lintest runs an analyzer over a fixture module and checks its
// diagnostics against // want comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest (which the module deliberately
// does not depend on).
//
// A fixture is a self-contained Go module rooted at <analyzer>/testdata,
// conventionally named `module liquid` so that packages placed under
// testdata/internal/... land in the analyzers' scope exactly like the real
// tree. Expectations are written on the offending line:
//
//	for k := range m { // want `scheduling-dependent`
//
// The quoted text (backquotes or double quotes) is a regexp matched against
// the diagnostic message; several expectations may share a line. The run
// fails on any unexpected diagnostic and on any unmatched expectation, so a
// fixture fails both when the analyzer goes quiet and when it over-reports.
package lintest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"liquid/internal/lint/analysis"
	"liquid/internal/lint/load"
)

// expectation is one parsed // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture module at dir and applies a, comparing diagnostics
// with // want comments; mismatches fail t. It is Check plus the testing.T
// plumbing.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	problems, err := Check(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// Check loads the fixture module at dir, applies a, and compares the
// diagnostics against the fixture's // want comments. It returns one
// problem string per mismatch — a fixture type error, an unexpected
// diagnostic, or an unmet expectation — and a non-nil error only when the
// fixture could not be processed at all (unloadable module, malformed
// // want comment, analyzer failure). A clean fixture yields (nil, nil).
//
// Check is the testable core of Run: it never touches testing.T, so the
// matcher's own behavior (regex handling, multi-expectation lines,
// over- and under-reporting) can itself be put under test.
func Check(dir string, a *analysis.Analyzer) (problems []string, err error) {
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s: %w", dir, err)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("fixture %s matched no packages", dir)
	}
	var targets []*analysis.Target
	var wants []*expectation
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			problems = append(problems, fmt.Sprintf("fixture %s: type error: %v", p.ImportPath, e))
		}
		targets = append(targets, &analysis.Target{
			Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info,
			Imports: p.Imports,
		})
		for _, f := range p.Files {
			ws, err := parseWants(p.Fset, f)
			if err != nil {
				return nil, err
			}
			wants = append(wants, ws...)
		}
	}
	res, err := analysis.Run(targets, []*analysis.Analyzer{a})
	if err != nil {
		return nil, fmt.Errorf("running %s on fixture %s: %w", a.Name, dir, err)
	}
	for _, d := range res.Diagnostics {
		if !consume(wants, d) {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.met {
			problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re))
		}
	}
	return problems, nil
}

func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// parseWants extracts // want expectations from a file's comments.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := c.Text[idx+len("// want "):]
			ms := wantRE.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed // want: no quoted pattern in %q", pos.Filename, pos.Line, rest)
			}
			for _, m := range ms {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad // want pattern %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out, nil
}
