this is not a valid go.mod file
