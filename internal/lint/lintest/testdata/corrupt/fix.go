// Package fix never loads: the module file above it is corrupt.
package fix
