// Package fix is a deliberately mismatched fixture: one diagnostic with no
// expectation, and one expectation no diagnostic will ever satisfy. Check
// must report both directions.
package fix

func bad1() int { return 1 }

func drive() int {
	n := bad1()
	return n // want `never reported`
}
