// Package fix carries a // want comment with no quoted pattern, which is a
// fixture-authoring error Check must surface as an error, not a mismatch.
package fix

func drive() int {
	return 1 // want a diagnostic but forgot the quotes
}
