// Package fix exercises the want-comment matcher's happy paths: backquoted
// patterns with regex metacharacters, double-quoted patterns, and two
// expectations sharing one line.
package fix

func bad1() int { return 1 }
func bad2() int { return 2 }
func good() int { return 3 }

func use(a, b int) int { return a + b }

func drive() int {
	x := bad1() // want `forbidden call to bad1 \(a\+b\) \[sic\]`
	y := good()
	z := use(bad1(), bad2()) // want `bad1 \(a\+b\)` "forbidden call to bad2"
	return x + y + z
}
