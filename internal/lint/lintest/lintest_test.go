package lintest_test

import (
	"go/ast"
	"strings"
	"testing"

	"liquid/internal/lint/analysis"
	"liquid/internal/lint/lintest"
)

// callcheck is the throwaway analyzer the matcher tests drive: it flags
// every call to a function whose name starts with "bad", with regex
// metacharacters in the message so escaping in // want patterns is
// exercised for real.
var callcheck = &analysis.Analyzer{
	Name: "callcheck",
	Doc:  "flags calls to functions named bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || !strings.HasPrefix(id.Name, "bad") {
					return true
				}
				pass.Reportf(id.Pos(), "forbidden call to %s (a+b) [sic]", id.Name)
				return true
			})
		}
		return nil
	},
}

// TestCheckCleanFixture covers the happy paths in one fixture: escaped
// metacharacters in backquoted patterns, a double-quoted pattern, and two
// expectations consumed by two diagnostics on the same line.
func TestCheckCleanFixture(t *testing.T) {
	problems, err := lintest.Check("testdata/good", callcheck)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean fixture produced problems: %v", problems)
	}
}

// TestCheckReportsBothMismatchDirections drives the deliberately broken
// fixture: an unflagged expectation and an unexpected diagnostic must each
// surface as a distinct problem.
func TestCheckReportsBothMismatchDirections(t *testing.T) {
	problems, err := lintest.Check("testdata/bad", callcheck)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want exactly 2 problems, got %d: %v", len(problems), problems)
	}
	var sawUnexpected, sawUnmet bool
	for _, p := range problems {
		if strings.Contains(p, "unexpected diagnostic") && strings.Contains(p, "forbidden call to bad1") {
			sawUnexpected = true
		}
		if strings.Contains(p, "expected diagnostic matching") && strings.Contains(p, "never reported") {
			sawUnmet = true
		}
	}
	if !sawUnexpected || !sawUnmet {
		t.Fatalf("missing a mismatch direction (unexpected=%v unmet=%v): %v", sawUnexpected, sawUnmet, problems)
	}
}

// TestCheckCorruptModule pins the error path for a fixture whose module
// cannot load at all: a hard error, not an empty problem list that would
// let a broken fixture read as a passing one.
func TestCheckCorruptModule(t *testing.T) {
	problems, err := lintest.Check("testdata/corrupt", callcheck)
	if err == nil {
		t.Fatalf("corrupt module loaded; problems = %v", problems)
	}
	if !strings.Contains(err.Error(), "loading fixture") {
		t.Fatalf("err = %v, want a loading error", err)
	}
}

// TestCheckMalformedWant: a // want comment with no quoted pattern is a
// fixture-authoring bug and must error rather than silently match nothing.
func TestCheckMalformedWant(t *testing.T) {
	_, err := lintest.Check("testdata/malformedwant", callcheck)
	if err == nil {
		t.Fatal("malformed // want accepted")
	}
	if !strings.Contains(err.Error(), "malformed // want") {
		t.Fatalf("err = %v, want malformed-want error", err)
	}
}

// TestCheckMissingFixtureDir: a nonexistent fixture directory errors.
func TestCheckMissingFixtureDir(t *testing.T) {
	if _, err := lintest.Check("testdata/nosuchdir", callcheck); err == nil {
		t.Fatal("missing fixture directory accepted")
	}
}

// TestRunIsCheckPlusT sanity-checks the wrapper still passes on a clean
// fixture (the analyzer suites use Run everywhere; this keeps the two entry
// points from drifting).
func TestRunIsCheckPlusT(t *testing.T) {
	lintest.Run(t, "testdata/good", callcheck)
}
