// Equilibrium example: instead of prescribing a delegation mechanism, let
// rational voters best-respond — each voter repeatedly picks the action
// (vote directly or delegate to an approved neighbour) that maximizes the
// group's probability of deciding correctly. The common-interest game is an
// exact potential game, so the dynamics converge to a pure Nash
// equilibrium, which is then compared with the paper's randomized
// Algorithm 1 on the same instance.
//
//	go run ./examples/equilibrium
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"liquid/internal/core"
	"liquid/internal/dynamics"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

func main() {
	const (
		n     = 80
		alpha = 0.05
		seed  = 31
	)
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := dynamics.BestResponse(in, dynamics.Options{Alpha: alpha})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Delegation.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	alg1, err := election.EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: alpha}, election.Options{
		Replications: 64,
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	tab := report.NewTable(
		fmt.Sprintf("best-response delegation on K_%d (alpha=%g)", n, alpha),
		"quantity", "value")
	tab.AddRow("converged to Nash equilibrium", fmt.Sprintf("%v", tr.Converged))
	tab.AddRow("sweeps / accepted moves", fmt.Sprintf("%d / %d", tr.Sweeps, tr.Moves))
	tab.AddRow("P (all direct)", report.F(tr.InitialProb))
	tab.AddRow("P (equilibrium)", report.F(tr.FinalProb))
	tab.AddRow("equilibrium gain", report.F(tr.FinalProb-tr.InitialProb))
	tab.AddRow("Algorithm 1 P^M (randomized)", report.F(alg1.PM))
	tab.AddRow("equilibrium sinks / max weight", fmt.Sprintf("%d / %d", len(res.Sinks), res.MaxWeight))
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Rational voters discover delegation on their own: the potential")
	fmt.Println("(group accuracy) only increases, so the equilibrium can never do")
	fmt.Println("worse than direct voting - a game-theoretic do-no-harm.")
}
