// DAO governance example: token holders in a decentralized autonomous
// organization vote on a binary proposal. Their "who knows whom" graph is a
// scale-free (Barabási–Albert) network, as observed in on-chain delegation
// studies the paper cites. We compare:
//
//   - direct voting,
//
//   - naive greedy delegation (everyone follows the most expert neighbour,
//     the behaviour that concentrates power on hubs),
//
//   - the paper's randomized threshold mechanism, and
//
//   - the same mechanism with a Lemma-5 weight cap.
//
//     go run ./examples/daogovernance
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

func main() {
	const (
		members = 2000
		alpha   = 0.05
		seed    = 7
	)
	root := rng.New(seed)

	// Scale-free member graph: most members know a few others, a handful of
	// well-connected influencers know hundreds.
	top, err := graph.BarabasiAlbert(members, 4, root.DeriveString("graph"))
	if err != nil {
		log.Fatal(err)
	}

	// Competency: most members are barely informed about the proposal
	// (just below a coin flip), a few are well informed.
	p := make([]float64, members)
	comp := root.DeriveString("competency")
	for i := range p {
		if comp.Bernoulli(0.1) {
			p[i] = 0.60 + 0.25*comp.Float64() // informed minority
		} else {
			p[i] = 0.35 + 0.13*comp.Float64() // uninformed majority
		}
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		log.Fatal(err)
	}

	mechanisms := []mechanism.Mechanism{
		mechanism.Direct{},
		mechanism.GreedyBest{Alpha: alpha},
		mechanism.ApprovalThreshold{Alpha: alpha},
		mechanism.WeightCapped{
			Inner:     mechanism.ApprovalThreshold{Alpha: alpha},
			MaxWeight: 25,
		},
	}

	tab := report.NewTable(
		fmt.Sprintf("DAO proposal vote: %d members, BA graph, 10%% informed", members),
		"mechanism", "P(correct)", "gain", "delegators", "sinks", "max weight")
	for _, m := range mechanisms {
		res, err := election.EvaluateMechanism(context.Background(), in, m, election.Options{
			Replications: 32,
			Seed:         seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(m.Name(), report.F(res.PM), report.F(res.Gain),
			report.F2(res.MeanDelegators), report.F2(res.MeanSinks), report.Itoa(res.MaxMaxWeight))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Takeaway: randomized delegation spreads votes over many informed")
	fmt.Println("sinks; greedy 'follow the influencer' funnels weight into hubs,")
	fmt.Println("which is exactly the concentration the paper's Lemma 5 warns about.")
	fmt.Println("The weight cap enforces the lemma's condition mechanically.")
}
