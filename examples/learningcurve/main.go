// Learning-curve example: a community decides a long sequence of issues and
// re-estimates who to trust after every outcome. Nothing about competencies
// is known up front — approval sets are built purely from observed track
// records, and the accuracy climbs from coin-flip territory to solid
// delegated performance.
//
//	go run ./examples/learningcurve
package main

import (
	"fmt"
	"log"
	"strings"

	"liquid/internal/adaptive"
	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func main() {
	const (
		n      = 301
		issues = 160
		alpha  = 0.05
		seed   = 13
	)
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		log.Fatal(err)
	}

	seq, err := adaptive.Run(in, adaptive.Options{Issues: issues, Alpha: alpha, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("adaptive liquid democracy: %d voters, %d issues, alpha=%g\n", n, issues, alpha)
	fmt.Printf("direct-voting reference: P = %.4f\n\n", seq.DirectProb)
	fmt.Println("issues   P[correct]  misdelegation  bar")
	const barWidth = 44
	for lo := 0; lo < issues; lo += 20 {
		hi := lo + 20
		if hi > issues {
			hi = issues
		}
		prob := seq.MeanProb(lo, hi)
		var mis float64
		for _, st := range seq.Steps[lo:hi] {
			mis += st.Misdelegation
		}
		mis /= float64(hi - lo)
		bar := strings.Repeat("#", int(prob*barWidth))
		fmt.Printf("%3d-%3d  %.4f      %.3f          %s\n", lo, hi, prob, mis, bar)
	}
	fmt.Println()
	fmt.Println("The community starts blind (direct voting, ~0 on this hard")
	fmt.Println("instance) and learns from every decided issue whom to delegate")
	fmt.Println("to; misdelegation decays as track records sharpen.")
}
