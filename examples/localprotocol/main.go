// LOCAL-model protocol example: runs the delegation mechanism as a real
// distributed protocol - every voter is a node that only sees pseudonymous
// neighbour ids and approval bits, delegation decisions are made locally,
// and sink weights are computed by a convergecast of weight messages.
// The distributed outcome is then cross-checked against the centralized
// resolution.
//
//	go run ./examples/localprotocol
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/report"
	"liquid/internal/rng"
)

func main() {
	const (
		n     = 800
		alpha = 0.04
		seed  = 23
	)
	root := rng.New(seed)

	top, err := graph.RandomRegular(n, 16, root.DeriveString("graph"))
	if err != nil {
		log.Fatal(err)
	}
	p := make([]float64, n)
	comp := root.DeriveString("competency")
	for i := range p {
		p[i] = 0.3 + 0.25*comp.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		log.Fatal(err)
	}

	res, err := localsim.RunThresholdDelegation(context.Background(), in, alpha, nil, seed)
	if err != nil {
		log.Fatal(err)
	}
	central, err := res.Delegation.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	// Verify the distributed weights against the centralized resolution.
	mismatches := 0
	for v := 0; v < n; v++ {
		want := 0
		if central.SinkOf[v] == v {
			want = central.Weight[v]
		}
		if res.Weights[v] != want {
			mismatches++
		}
	}

	pm, err := election.ResolutionProbabilityExact(in, central)
	if err != nil {
		log.Fatal(err)
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		log.Fatal(err)
	}

	tab := report.NewTable(
		fmt.Sprintf("distributed threshold delegation on a random 16-regular graph (n=%d)", n),
		"quantity", "value")
	tab.AddRow("synchronous rounds", report.Itoa(res.Rounds))
	tab.AddRow("messages delivered", report.Itoa(res.Messages))
	tab.AddRow("delegators", report.Itoa(res.Delegation.NumDelegators()))
	tab.AddRow("sinks", report.Itoa(len(central.Sinks)))
	tab.AddRow("longest delegation chain", report.Itoa(central.LongestChain))
	tab.AddRow("max sink weight", report.Itoa(central.MaxWeight))
	tab.AddRow("weight mismatches vs centralized", report.Itoa(mismatches))
	tab.AddRow("P^D (direct)", report.F(pd))
	tab.AddRow("P^M (delegated)", report.F(pm))
	tab.AddRow("gain", report.F(pm-pd))
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("The protocol needs longest-chain+1 rounds and one message per")
	fmt.Println("delegation hop - the locality the paper's mechanisms promise.")
	if mismatches != 0 {
		os.Exit(1)
	}
}
