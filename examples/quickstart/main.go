// Quickstart: build a voting instance, run a local delegation mechanism,
// and compare it with direct voting.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func main() {
	const (
		n     = 1001
		alpha = 0.05 // delegate only to voters at least alpha more competent
		seed  = 42
	)

	// 1. A complete voting graph: everyone can delegate to anyone.
	top := graph.NewComplete(n)

	// 2. Competencies: uniform in [0.30, 0.49] - individually weak voters,
	//    collectively below the majority threshold. The interesting regime.
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's Algorithm 1: delegate to a uniformly random approved
	//    neighbour whenever the approval set is big enough.
	mech := mechanism.ApprovalThreshold{Alpha: alpha}

	// 4. Evaluate: P^M is averaged over mechanism randomness, each
	//    realization scored by the exact weighted-majority DP.
	res, err := election.EvaluateMechanism(context.Background(), in, mech, election.Options{
		Replications: 64,
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("voters:                 %d\n", res.N)
	fmt.Printf("mean competency:        %.4f\n", in.MeanCompetency())
	fmt.Printf("P(correct), direct:     %.4f\n", res.PD)
	fmt.Printf("P(correct), delegated:  %.4f\n", res.PM)
	fmt.Printf("gain:                   %+.4f  (95%% CI %.4f..%.4f)\n", res.Gain, res.GainLo, res.GainHi)
	fmt.Printf("mean delegators:        %.1f of %d\n", res.MeanDelegators, res.N)
	fmt.Printf("mean sinks:             %.1f (max weight %d)\n", res.MeanSinks, res.MaxMaxWeight)
	fmt.Println()
	fmt.Println("Liquid democracy wins here because delegation concentrates the")
	fmt.Println("decision on the most competent voters while the spread across")
	fmt.Println("many sinks preserves enough variance to avoid dictatorship.")
}
