// Distributed election example: the entire pipeline runs as message-passing
// protocols with no central coordinator — delegation decisions are local,
// sink weights are computed by an ack-tolerant convergecast, the sinks cast
// their votes, and push-sum gossip spreads the tally until every node can
// announce the result on its own.
//
//	go run ./examples/distributedelection
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
)

func main() {
	const (
		n      = 500
		degree = 12
		alpha  = 0.04
		seed   = 99
		gossip = 200
	)
	root := rng.New(seed)
	top, err := graph.RandomRegular(n, degree, root.DeriveString("graph"))
	if err != nil {
		log.Fatal(err)
	}
	p := make([]float64, n)
	comp := root.DeriveString("comp")
	for i := range p {
		p[i] = 0.35 + 0.4*comp.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		log.Fatal(err)
	}

	res, err := localsim.RunDistributedElection(context.Background(), in, alpha, localsim.ThresholdRule(nil), seed, gossip)
	if err != nil {
		log.Fatal(err)
	}

	var est prob.Summary
	for _, e := range res.Estimates {
		est.Add(e)
	}

	tab := report.NewTable(
		fmt.Sprintf("fully distributed election on a %d-regular graph (n=%d)", degree, n),
		"quantity", "value")
	tab.AddRow("gossip rounds", report.Itoa(res.GossipRounds))
	tab.AddRow("true outcome correct", fmt.Sprintf("%v", res.CorrectWon))
	tab.AddRow("nodes agreeing with outcome", fmt.Sprintf("%d / %d", res.Agreeing, n))
	tab.AddRow("estimate mean ± sd", report.F(est.Mean())+" ± "+report.F(est.StdDev()))
	tab.AddRow("estimate min / max", report.F(est.Min())+" / "+report.F(est.Max()))
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Every node ends up with (nearly) the same estimate of the")
	fmt.Println("correct-vote share - push-sum mass conservation at work - so")
	fmt.Println("the election result needs no central tally at all.")
}
