// Social network audit: the paper's Section 6 asks whether real-world
// networks satisfy the variance-preserving conditions of Lemmas 3 and 5.
// This example audits synthetic stand-ins (Barabási–Albert, planted
// communities, Erdős–Rényi, random regular) under the threshold mechanism:
// how much weight does the heaviest sink accumulate, and does it stay below
// the Lemma 5 comfort zone?
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

func main() {
	const (
		n     = 3000
		alpha = 0.05
		seed  = 11
		reps  = 10
	)
	root := rng.New(seed)

	networks := []struct {
		name  string
		build func(s *rng.Stream) (graph.Topology, error)
	}{
		{"barabasi-albert m=2", func(s *rng.Stream) (graph.Topology, error) {
			return graph.BarabasiAlbert(n, 2, s)
		}},
		{"barabasi-albert m=6", func(s *rng.Stream) (graph.Topology, error) {
			return graph.BarabasiAlbert(n, 6, s)
		}},
		{"communities k=20", func(s *rng.Stream) (graph.Topology, error) {
			return graph.Community(n, 20, 0.08, 0.0005, s)
		}},
		{"erdos-renyi <deg>=12", func(s *rng.Stream) (graph.Topology, error) {
			return graph.ErdosRenyi(n, 12.0/float64(n-1), s)
		}},
		{"random 12-regular", func(s *rng.Stream) (graph.Topology, error) {
			return graph.RandomRegular(n, 12, s)
		}},
	}

	// The Lemma 5 comfort zone: max sink weight well below sqrt(n^{1+eps}).
	eps := 0.1
	comfort := math.Sqrt(math.Pow(float64(n), 1+eps))

	tab := report.NewTable(
		fmt.Sprintf("Lemma 5 audit on network models (n=%d, alpha=%g, %d runs each)", n, alpha, reps),
		"network", "max deg", "mean max w", "worst max w", "comfort sqrt(n^{1+eps})", "within")
	for _, nd := range networks {
		top, err := nd.build(root.DeriveString(nd.name))
		if err != nil {
			log.Fatal(err)
		}
		in, err := uniformInstance(top, 0.3, 0.7, root.DeriveString(nd.name+"/p"))
		if err != nil {
			log.Fatal(err)
		}
		mech := mechanism.ApprovalThreshold{Alpha: alpha}
		sumW, worstW := 0, 0
		for r := 0; r < reps; r++ {
			d, err := mech.Apply(in, root.Derive(uint64(r)))
			if err != nil {
				log.Fatal(err)
			}
			res, err := d.Resolve()
			if err != nil {
				log.Fatal(err)
			}
			sumW += res.MaxWeight
			if res.MaxWeight > worstW {
				worstW = res.MaxWeight
			}
		}
		meanW := float64(sumW) / reps
		tab.AddRow(nd.name,
			report.Itoa(graph.Degrees(top).Max),
			report.F2(meanW),
			report.Itoa(worstW),
			report.F2(comfort),
			fmt.Sprintf("%v", float64(worstW) <= comfort))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Hubs in scale-free networks attract more delegated weight than")
	fmt.Println("flat topologies - the structural asymmetry the paper identifies")
	fmt.Println("as the enemy of the do-no-harm property.")
}

func uniformInstance(top graph.Topology, lo, hi float64, s *rng.Stream) (*core.Instance, error) {
	p := make([]float64, top.N())
	for i := range p {
		p[i] = lo + (hi-lo)*s.Float64()
	}
	return core.NewInstance(top, p)
}
